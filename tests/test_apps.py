"""Tests for the kripke and hypre application models."""

import numpy as np
import pytest

from repro.apps import HypreBenchmark, KripkeBenchmark
from repro.apps.hypre import SOLVER_IDS
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def kripke() -> KripkeBenchmark:
    return KripkeBenchmark()


@pytest.fixture(scope="module")
def hypre() -> HypreBenchmark:
    return HypreBenchmark()


class TestKripkeSpace:
    def test_table_2_parameters(self, kripke):
        s = kripke.space
        assert s["layout"].values == ("DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD")
        assert s["gset"].values == (1, 2, 4, 8, 16, 32, 64, 128)
        assert s["dset"].values == (8, 16, 32)
        assert s["pmethod"].values == ("sweep", "bj")
        assert s["#process"].values == (1, 2, 4, 8, 16, 32, 64, 128)

    def test_space_size(self, kripke):
        assert kripke.space.size() == 6 * 8 * 3 * 2 * 8


class TestKripkeModel:
    def _time(self, kripke, **cfg):
        defaults = dict(layout="DGZ", gset=8, dset=8, pmethod="sweep")
        defaults.update(cfg)
        return kripke.true_time({"#process": defaults.pop("procs", 16), **defaults})

    def test_all_configs_positive_finite(self, kripke):
        t = kripke.true_times_encoded(kripke.space.grid_encoded())
        assert np.isfinite(t).all() and (t > 0).all()

    def test_strong_scaling_helps(self, kripke):
        assert self._time(kripke, procs=64) < self._time(kripke, procs=1)

    def test_layout_matters(self, kripke):
        dgz = self._time(kripke, layout="DGZ")
        zgd = self._time(kripke, layout="ZGD")
        assert dgz != zgd

    def test_zone_innermost_layout_fast(self, kripke):
        """Z-innermost layouts vectorise over the mesh and should win."""
        dgz = self._time(kripke, layout="DGZ", procs=1)
        zgd = self._time(kripke, layout="ZGD", procs=1)
        assert dgz < zgd

    def test_sweep_vs_bj_crossover_exists(self, kripke):
        """The sweep/bj trade-off depends on the rest of the configuration;
        a tuner has something to learn only if neither dominates."""
        grid = kripke.space.grid_encoded()
        t = kripke.true_times_encoded(grid)
        cfgs = kripke.space.decode(grid)
        sweep_wins = 0
        bj_wins = 0
        for i, cfg in enumerate(cfgs):
            if cfg["pmethod"] != "sweep":
                continue
            other = dict(cfg, pmethod="bj")
            tb = kripke.true_time(other)
            if t[i] < tb:
                sweep_wins += 1
            elif tb < t[i]:
                bj_wins += 1
        assert sweep_wins > 0 and bj_wins > 0

    def test_oversubscribed_sets_slow_small_blocks(self, kripke):
        # gset=128 with dset=32 makes 4096 tiny blocks: overhead territory
        # at small process counts where pipelining cannot pay it back.
        few_blocks = self._time(kripke, gset=4, dset=8, procs=2)
        many_blocks = self._time(kripke, gset=128, dset=32, procs=2)
        assert many_blocks > few_blocks

    def test_single_process_methods_equal(self, kripke):
        s = self._time(kripke, pmethod="sweep", procs=1)
        b = self._time(kripke, pmethod="bj", procs=1)
        assert s == pytest.approx(b)


class TestHypreSpace:
    def test_table_3_parameters(self, hypre):
        s = hypre.space
        assert s["solver"].values == SOLVER_IDS
        assert len(SOLVER_IDS) == 25
        assert s["coarsening"].values == ("pmis", "hmis")
        assert s["smtype"].values == tuple(range(9))
        assert s["#process"].values == (8, 16, 32, 64, 128, 256, 512)


class TestHypreModel:
    def _time(self, hypre, solver=0, coarsening="pmis", smtype=6, procs=64):
        return hypre.true_time(
            {"solver": solver, "coarsening": coarsening, "smtype": smtype, "#process": procs}
        )

    def test_all_configs_positive_finite(self, hypre):
        t = hypre.true_times_encoded(hypre.space.grid_encoded())
        assert np.isfinite(t).all() and (t > 0).all()

    def test_amg_beats_bare_krylov(self, hypre):
        """Unpreconditioned Krylov on a Laplacian converges painfully."""
        assert self._time(hypre, solver=0) < self._time(hypre, solver=20)

    def test_incompatible_pairs_hit_iteration_cap(self, hypre):
        """CG-family solver with a non-symmetric smoother diverges (slow)."""
        good = self._time(hypre, solver=3, smtype=6)  # symmetric smoother
        bad = self._time(hypre, solver=3, smtype=1)  # sequential GS: not sym
        assert bad > 5.0 * good

    def test_smoother_cost_vs_strength_tradeoff(self, hypre):
        """Strong (8) and cheap (0) smoothers must both be viable somewhere."""
        strong = self._time(hypre, solver=0, smtype=8)
        cheap = self._time(hypre, solver=0, smtype=0)
        assert strong != cheap

    def test_scaling_saturates(self, hypre):
        """512 processes on 2M unknowns is comm-bound: speedup over 64
        processes must be far below the 8x ideal."""
        t64 = self._time(hypre, procs=64)
        t512 = self._time(hypre, procs=512)
        assert t512 < t64  # still some gain...
        assert t64 / t512 < 4.0  # ...but nowhere near linear

    def test_heavy_tail_from_divergent_configs(self, hypre, rng):
        t = hypre.true_times_encoded(hypre.space.grid_encoded())
        assert np.percentile(t, 99) / np.percentile(t, 10) > 20.0

    def test_hmis_changes_setup_cost(self, hypre):
        pmis = self._time(hypre, coarsening="pmis")
        hmis = self._time(hypre, coarsening="hmis")
        assert pmis != hmis


class TestRegistry:
    def test_apps_registered(self):
        assert get_benchmark("kripke").name == "kripke"
        assert get_benchmark("hypre").name == "hypre"

    def test_network_required(self):
        from repro.machine import PLATFORM_A

        with pytest.raises(ValueError, match="network"):
            KripkeBenchmark(machine=PLATFORM_A)
        with pytest.raises(ValueError, match="network"):
            HypreBenchmark(machine=PLATFORM_A)
