"""Tests for uncertainty-calibration diagnostics."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor
from repro.metrics import uncertainty_calibration


class TestCalibrationReport:
    def test_perfectly_gaussian_residuals(self, rng):
        n = 20_000
        sigma = np.full(n, 2.0)
        mu = np.zeros(n)
        y = rng.normal(0.0, 2.0, n)
        report = uncertainty_calibration(y, mu, sigma)
        assert report.coverage_1sigma == pytest.approx(0.683, abs=0.02)
        assert report.coverage_2sigma == pytest.approx(0.954, abs=0.02)
        assert report.rms_z == pytest.approx(1.0, abs=0.03)
        assert not report.overconfident
        assert not report.underconfident

    def test_overconfident_detected(self, rng):
        n = 5000
        y = rng.normal(0.0, 5.0, n)
        report = uncertainty_calibration(y, np.zeros(n), np.full(n, 0.5))
        assert report.overconfident
        assert "overconfident" in report.summary()

    def test_underconfident_detected(self, rng):
        n = 5000
        y = rng.normal(0.0, 0.2, n)
        report = uncertainty_calibration(y, np.zeros(n), np.full(n, 10.0))
        assert report.underconfident

    def test_exact_predictions_with_zero_sigma_covered(self):
        y = np.array([1.0, 2.0])
        report = uncertainty_calibration(y, y.copy(), np.zeros(2))
        assert report.coverage_1sigma == 1.0
        assert np.isnan(report.rms_z)

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            uncertainty_calibration(np.ones(3), np.ones(2), np.ones(2))
        with pytest.raises(ValueError, match="zero"):
            uncertainty_calibration(np.array([]), np.array([]), np.array([]))
        with pytest.raises(ValueError, match="non-negative"):
            uncertainty_calibration(np.ones(1), np.ones(1), -np.ones(1))


class TestForestCalibration:
    def test_forest_sigma_is_informative(self, regression_data):
        """On held-out data the forest's σ must not be wildly overconfident
        (the property every strategy in the paper depends on)."""
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=30, seed=0).fit(X[:200], y[:200])
        mu, sigma = rf.predict_with_uncertainty(X[200:])
        report = uncertainty_calibration(y[200:], mu, sigma)
        assert report.coverage_2sigma > 0.5
        assert report.n == 100
