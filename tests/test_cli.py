"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "galactic"])

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--data-dir", "/tmp/x"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.data_dir == "/tmp/x"
        assert args.host is None  # defers to $REPRO_SERVICE_HOST

    def test_progress_force_flag(self):
        args = build_parser().parse_args(["fig2", "--progress"])
        assert args.progress is True


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "atax" in out and "pwu" in out and "paper" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "E5-2680" in out

    def test_fig2_single_kernel_writes_json(self, capsys, tmp_path, monkeypatch):
        # Patch the smoke scale down so the CLI test stays fast.
        from repro.cli import SCALES
        from repro.experiments.config import ExperimentScale

        monkeypatch.setitem(
            SCALES,
            "smoke",
            ExperimentScale(
                name="smoke",
                pool_size=150,
                test_size=120,
                n_init=8,
                n_max=14,
                n_trials=1,
                eval_every=6,
                n_estimators=6,
            ),
        )
        code = main(
            [
                "fig2",
                "--scale",
                "smoke",
                "--kernels",
                "mvt",
                "-o",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 3" in out
        payload = json.loads((tmp_path / "fig2.json").read_text())
        assert "mvt" in payload["data"]
        assert (tmp_path / "fig3.json").exists()

    def _patch_tiny_smoke(self, monkeypatch):
        from repro.cli import SCALES
        from repro.experiments.config import ExperimentScale

        monkeypatch.setitem(
            SCALES,
            "smoke",
            ExperimentScale(
                name="smoke",
                pool_size=150,
                test_size=120,
                n_init=8,
                n_max=14,
                n_trials=2,
                eval_every=6,
                n_estimators=6,
            ),
        )

    def test_jobs_flag_preserves_results_and_cache_resumes(
        self, capsys, tmp_path, monkeypatch
    ):
        """--jobs 2 output matches --jobs 1 byte-for-byte, and a rerun with
        the same --cache-dir executes nothing (all cache hits)."""
        self._patch_tiny_smoke(monkeypatch)
        cache = tmp_path / "cache"
        common = ["fig2", "--scale", "smoke", "--kernels", "mvt"]

        assert main([*common, "--jobs", "1", "-o", str(tmp_path / "serial")]) == 0
        capsys.readouterr()
        assert main(
            [*common, "--jobs", "2", "--cache-dir", str(cache),
             "-o", str(tmp_path / "parallel")]
        ) == 0
        first_err = capsys.readouterr().err
        assert "cache hits 0" in first_err

        serial = (tmp_path / "serial" / "fig2.json").read_bytes()
        parallel = (tmp_path / "parallel" / "fig2.json").read_bytes()
        assert serial == parallel

        assert main(
            [*common, "--jobs", "2", "--cache-dir", str(cache),
             "-o", str(tmp_path / "resumed")]
        ) == 0
        second_err = capsys.readouterr().err
        assert "executed 0" in second_err
        assert (tmp_path / "resumed" / "fig2.json").read_bytes() == serial

    def test_no_progress_silences_telemetry(self, capsys, tmp_path, monkeypatch):
        self._patch_tiny_smoke(monkeypatch)
        assert main(
            ["fig2", "--scale", "smoke", "--kernels", "mvt", "--no-progress"]
        ) == 0
        assert "[engine]" not in capsys.readouterr().err


class TestDistillAndRun:
    def test_distill_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["distill", "atax"])

    def test_distill_then_run_the_envelope(self, capsys, tmp_path, monkeypatch):
        """The acceptance path: distill a kernel, then run strategies
        against the frozen envelope via the surrogate: prefix."""
        from repro.cli import SCALES
        from repro.experiments.config import ExperimentScale

        monkeypatch.setitem(
            SCALES,
            "smoke",
            ExperimentScale(
                name="smoke",
                pool_size=150,
                test_size=120,
                n_init=8,
                n_max=14,
                n_trials=1,
                eval_every=6,
                n_estimators=6,
            ),
        )
        out = tmp_path / "d.npz"
        code = main(
            ["distill", "kernel:atax", "--surrogate", "forest",
             "--budget", "120", "--n-estimators", "4", "-o", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "distilled atax" in capsys.readouterr().out

        code = main(
            ["run", f"surrogate:{out}", "--scale", "smoke",
             "--no-progress", "-o", str(tmp_path / "results")]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "pwu" in printed and "final RMSE" in printed
        written = list((tmp_path / "results").glob("run-*.json"))
        assert len(written) == 1
        payload = json.loads(written[0].read_text())
        assert payload["workload"] == f"surrogate:{out}"
        assert "pwu" in payload["metrics"]

    def test_run_multiple_strategies_compares(self, capsys, tmp_path, monkeypatch):
        from repro.cli import SCALES
        from repro.experiments.config import ExperimentScale

        monkeypatch.setitem(
            SCALES,
            "smoke",
            ExperimentScale(
                name="smoke",
                pool_size=120,
                test_size=100,
                n_init=8,
                n_max=12,
                n_trials=1,
                eval_every=6,
                n_estimators=5,
            ),
        )
        code = main(
            ["run", "mvt", "--strategy", "random", "pwu",
             "--scale", "smoke", "--no-progress"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "random" in printed and "pwu" in printed
