"""Tests for the uncertainty estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest.uncertainty import across_tree_std, total_variance_std


class TestAcrossTreeStd:
    def test_identical_trees_zero(self):
        P = np.tile(np.array([1.0, 2.0, 3.0]), (5, 1))
        assert np.allclose(across_tree_std(P), 0.0)

    def test_known_value(self):
        P = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert np.allclose(across_tree_std(P), [1.0, 1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            across_tree_std(np.zeros(5))


class TestTotalVarianceStd:
    def test_reduces_to_across_tree_when_leaves_pure(self):
        M = np.array([[1.0, 2.0], [3.0, 4.0]])
        V = np.zeros_like(M)
        assert np.allclose(total_variance_std(M, V), M.std(axis=0))

    def test_adds_within_leaf_variance(self):
        M = np.array([[1.0], [1.0]])  # trees agree
        V = np.array([[4.0], [4.0]])  # but leaves are impure
        assert total_variance_std(M, V)[0] == pytest.approx(2.0)

    def test_law_of_total_variance(self):
        M = np.array([[0.0], [2.0]])
        V = np.array([[1.0], [3.0]])
        expected = np.sqrt(np.mean([1.0, 3.0]) + np.var([0.0, 2.0]))
        assert total_variance_std(M, V)[0] == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variance_std(np.zeros((2, 3)), np.zeros((2, 4)))


@given(
    n_trees=st.integers(2, 10),
    n_samples=st.integers(1, 20),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_property_total_variance_dominates(n_trees, n_samples, seed):
    """σ_total ≥ σ_across for any leaf statistics."""
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(n_trees, n_samples))
    V = rng.uniform(0, 2, size=(n_trees, n_samples))
    assert (total_variance_std(M, V) >= across_tree_std(M) - 1e-12).all()
