"""Integration tests for the figure drivers (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentScale

#: Smallest scale at which every driver still works (alpha=0.01 needs
#: a 100+ sample test set).
TINY = ExperimentScale(
    name="tiny",
    pool_size=150,
    test_size=120,
    n_init=8,
    n_batch=1,
    n_max=18,
    n_trials=1,
    eval_every=5,
    n_estimators=8,
)


class TestTables:
    def test_tables_render(self):
        res = figures.tables_1_to_4()
        text = res.render()
        for token in ("Table I", "Table II", "Table III", "Table IV", "ADI".lower()):
            assert token.lower() in text.lower()
        assert res.data["adi_n_parameters"] == 18


class TestFig2Fig3:
    def test_single_kernel_panels(self):
        f2, f3 = figures.fig2_fig3(
            TINY, kernels=("mvt",), strategies=("random", "pwu"), seed=0
        )
        assert "mvt" in f2.panels
        assert "mvt" in f3.panels
        assert "pwu" in f2.panels["mvt"]
        # Raw data has both strategies with aligned n_train grids.
        d = f2.data["mvt"]
        assert set(d) == {"random", "pwu"}
        assert d["random"]["n_train"] == d["pwu"]["n_train"]


class TestFig4Fig5:
    def test_apps_panels(self):
        f4, f5 = figures.fig4_fig5(TINY, strategies=("pbus", "pwu"), seed=0)
        assert "kripke (a) RMSE" in f4.panels
        assert "hypre (b) CC" in f4.panels
        assert "kripke" in f5.panels and "hypre" in f5.panels


class TestFig6:
    def test_alpha_sweep(self):
        res = figures.fig6(TINY, benchmark="mvt", alphas=(0.05, 0.10), seed=0)
        assert set(res.panels) == {"alpha=0.05", "alpha=0.1"}
        assert set(res.data) == {"0.05", "0.1"}


class TestFig7:
    def test_speedup_table(self):
        res = figures.fig7(TINY, benchmarks=("mvt",), seed=0)
        assert "mvt" in res.data["speedups"]
        assert "speedup" in res.panels["speedup of CC (PBUS / PWU)"]

    def test_precomputed_traces_reused(self):
        from repro.experiments.runner import comparison_traces

        traces = comparison_traces("mvt", ("pbus", "pwu"), TINY, seed=0, alpha=0.01)
        res = figures.fig7(TINY, benchmarks=("mvt",), precomputed={"mvt": traces})
        sp = res.data["speedups"]["mvt"]
        assert sp > 0 or np.isnan(sp)


class TestFig8:
    def test_tuning_comparison(self):
        res = figures.fig8(TINY, benchmark_name="mvt", n_tuning_iterations=8, seed=0)
        assert "ground truth" in res.panels["best true time found so far"]
        assert len(res.data["direct"]) == 8
        assert res.data["direct_final"] > 0
        assert res.data["surrogate_final"] > 0


class TestFig9:
    def test_selection_maps(self):
        res = figures.fig9(TINY, benchmark_name="mvt", seed=0)
        assert set(res.panels) == {"PBUS", "PWU"}
        for strat in ("pbus", "pwu"):
            d = res.data[strat]
            assert d["n_selected"] == TINY.n_max - TINY.n_init
            assert 0.0 <= d["frac_high_sigma"] <= 1.0
            assert d["mean_selection_sigma"] >= 0.0
