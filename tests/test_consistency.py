"""Scalar/batch consistency across the public surfaces."""

import numpy as np
import pytest

from repro.workloads import all_benchmarks, get_benchmark


@pytest.mark.parametrize("name", ["atax", "dgemv3", "kripke", "hypre"])
class TestScalarBatchConsistency:
    def test_true_time_matches_batch_evaluation(self, name, rng):
        bench = get_benchmark(name)
        configs = bench.space.sample(rng, 10)
        X = bench.space.encode(configs)
        batch = bench.true_times_encoded(X)
        singles = [bench.true_time(c) for c in configs]
        assert np.allclose(batch, singles)

    def test_single_row_matrix_equals_vector(self, name, rng):
        bench = get_benchmark(name)
        X = bench.space.sample_encoded(rng, 1)
        a = bench.true_times_encoded(X)
        b = bench.true_times_encoded(X[0].reshape(1, -1))
        assert np.array_equal(a, b)


class TestEncodedOrderingInvariance:
    def test_permuting_rows_permutes_times(self, rng):
        bench = get_benchmark("mm")
        X = bench.space.sample_encoded(rng, 50)
        t = bench.true_times_encoded(X)
        perm = rng.permutation(50)
        assert np.allclose(bench.true_times_encoded(X[perm]), t[perm])

    def test_duplicate_rows_get_equal_times(self, rng):
        bench = get_benchmark("lu")
        X = bench.space.sample_encoded(rng, 5)
        X2 = np.vstack([X, X])
        t = bench.true_times_encoded(X2)
        assert np.allclose(t[:5], t[5:])


class TestAllBenchmarksBasicContract:
    def test_every_benchmark_space_nonempty(self):
        for name in all_benchmarks():
            bench = get_benchmark(name)
            assert bench.space.size() > 100, name
            if name.startswith("distilled:"):
                # Zoo entries resolve to the stamped envelope name so the
                # prepare-split derivation is independent of the load path
                # (``distilled:<stem>`` vs ``surrogate:<file>``).
                assert name == f"distilled:{bench.name}", name
            else:
                assert bench.name == name
