"""Tests for permutation importance."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor, permutation_importance


@pytest.fixture
def fitted_problem(rng):
    X = rng.random((250, 4))
    y = 5.0 * X[:, 1] + 0.5 * X[:, 3] + rng.normal(0, 0.05, 250)
    model = RandomForestRegressor(n_estimators=15, seed=0).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_dominant_feature_found(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, seed=0)
        assert imp.argmax() == 1

    def test_irrelevant_features_near_zero(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, n_repeats=10, seed=0)
        assert abs(imp[0]) < 0.2 * imp[1]
        assert abs(imp[2]) < 0.2 * imp[1]

    def test_weak_feature_between(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, n_repeats=10, seed=0)
        assert imp[1] > imp[3] > abs(imp[2])

    def test_reproducible(self, fitted_problem):
        model, X, y = fitted_problem
        a = permutation_importance(model, X, y, seed=3)
        b = permutation_importance(model, X, y, seed=3)
        assert np.array_equal(a, b)

    def test_validation(self, fitted_problem):
        model, X, y = fitted_problem
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError, match="rows"):
            permutation_importance(model, X, y[:-1])
