"""Whole-program graph construction and the fixed-point dataflow engine.

The graph tests build tiny throwaway packages under ``tmp_path`` and
inspect the resulting :class:`~repro.analysis.graph.ProjectGraph`: module
naming, import resolution (absolute and relative), call resolution
through annotations, and entry-point detection (explicit markers, pool
submission, ``threading.Thread`` targets, HTTP ``do_*`` handlers).
"""

from pathlib import Path

import pytest

from repro.analysis.dataflow import (
    fixed_point,
    intersect_join,
    or_join,
    reachable,
    union_join,
)
from repro.analysis.graph import module_name_for
from repro.analysis.graph_rules import LAYER_CONTRACT, layer_of
from repro.analysis.runner import build_graph_for_paths


def _graph(tmp_path, files: "dict[str, str]"):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return build_graph_for_paths([tmp_path])


# -- module naming -----------------------------------------------------------


def test_module_name_for_walks_packages(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "mod.py").write_text("")
    assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
    assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"
    assert module_name_for(tmp_path / "loose.py") == "loose"


# -- import resolution -------------------------------------------------------


def test_import_edges_resolve_absolute_and_relative(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/leaf.py": "VALUE = 1\n",
            "pkg/absolute.py": "import pkg.leaf\n",
            "pkg/fromform.py": "from pkg.leaf import VALUE\n",
            "pkg/relative.py": "from .leaf import VALUE\n",
            "pkg/external.py": "import json\nimport numpy as np\n",
        },
    )
    edges = graph.import_edges()
    assert edges["pkg.absolute"] == ["pkg.leaf"]
    assert edges["pkg.fromform"] == ["pkg.leaf"]
    assert edges["pkg.relative"] == ["pkg.leaf"]
    # stdlib/external imports never become project edges
    assert edges["pkg.external"] == []


# -- call resolution ---------------------------------------------------------


def test_call_edges_direct_method_and_annotation(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/store.py": (
                "class Store:\n"
                "    def put(self, k, v):\n"
                "        self._write(k, v)\n"
                "    def _write(self, k, v):\n"
                "        pass\n"
            ),
            "pkg/user.py": (
                "from pkg.store import Store\n\n\n"
                "def local_call():\n"
                "    store = Store()\n"
                "    store.put('a', 1)\n\n\n"
                "def annotated_call(store: Store):\n"
                "    store.put('b', 2)\n"
            ),
        },
    )
    edges = graph.call_edges()
    assert edges["pkg.store.Store.put"] == ["pkg.store.Store._write"]
    assert "pkg.store.Store.put" in edges["pkg.user.local_call"]
    assert "pkg.store.Store.put" in edges["pkg.user.annotated_call"]


def test_init_attribute_types_resolve_cross_module(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/reg.py": (
                "class Registry:\n"
                "    def lookup(self, k):\n"
                "        pass\n"
            ),
            "pkg/app.py": (
                "from pkg.reg import Registry\n\n\n"
                "class App:\n"
                "    def __init__(self, registry: Registry):\n"
                "        self.registry = registry\n"
                "    def route(self, k):\n"
                "        return self.registry.lookup(k)\n"
            ),
        },
    )
    edges = graph.call_edges()
    assert edges["pkg.app.App.route"] == ["pkg.reg.Registry.lookup"]


# -- entry detection ---------------------------------------------------------


def test_entry_detection_markers_and_registrations(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/entries.py": (
                "import threading\n"
                "from concurrent.futures import ProcessPoolExecutor\n\n\n"
                "def marked_worker(job):  # repro: worker-entry\n"
                "    pass\n\n\n"
                "def marked_thread():  # repro: thread-entry\n"
                "    pass\n\n\n"
                "def submitted(job):\n"
                "    pass\n\n\n"
                "def threaded():\n"
                "    pass\n\n\n"
                "def plain():\n"
                "    pass\n\n\n"
                "def dispatch(pool):\n"
                "    pool.submit(submitted, 1)\n"
                "    threading.Thread(target=threaded).start()\n"
            ),
            "pkg/httpish.py": (
                "from http.server import BaseHTTPRequestHandler\n\n\n"
                "class Handler(BaseHTTPRequestHandler):\n"
                "    def do_GET(self):\n"
                "        pass\n"
                "    def helper(self):\n"
                "        pass\n"
            ),
        },
    )
    assert "pkg.entries.marked_worker" in graph.worker_entries
    assert "pkg.entries.submitted" in graph.worker_entries
    assert "pkg.entries.marked_thread" in graph.thread_entries
    assert "pkg.entries.threaded" in graph.thread_entries
    assert "pkg.httpish.Handler.do_GET" in graph.thread_entries
    assert "pkg.entries.plain" not in graph.worker_entries
    assert "pkg.entries.plain" not in graph.thread_entries
    assert "pkg.httpish.Handler.helper" not in graph.thread_entries


def test_graph_json_shape(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/a.py": "import pkg.b\n\n\ndef f():\n    pkg.b.g()\n",
            "pkg/b.py": "def g():\n    pass\n",
        },
    )
    dump = graph.to_json()
    assert dump["modules"]["pkg.a"]["imports"] == ["pkg.b"]
    assert dump["call_edges"]["pkg.a.f"] == ["pkg.b.g"]
    assert dump["functions"] == 2


# -- the dataflow engine -----------------------------------------------------


def test_reachable_transitive_closure():
    succ = {"a": ["b"], "b": ["c"], "c": [], "d": ["a"], "e": []}
    assert reachable(["a"], succ) == {"a", "b", "c"}
    assert reachable(["e"], succ) == {"e"}


def test_fixed_point_union_accumulates():
    edges = {"a": [("b", None)], "b": [("c", None)]}
    facts = fixed_point({"a": frozenset({"x"})}, edges, union_join)
    assert facts["c"] == frozenset({"x"})


def test_fixed_point_intersect_models_must_analysis():
    # c is reached from a (holding x) and b (holding nothing): must = {}
    def add_x(fact):
        return fact | {"x"}

    edges = {"a": [("c", add_x)], "b": [("c", None)]}
    facts = fixed_point(
        {"a": frozenset(), "b": frozenset()}, edges, intersect_join
    )
    assert facts["c"] == frozenset()

    # with only the x-holding edge, must-held survives
    facts = fixed_point({"a": frozenset()}, {"a": [("c", add_x)]}, intersect_join)
    assert facts["c"] == frozenset({"x"})


def test_fixed_point_or_join_terminates_on_cycles():
    edges = {"a": [("b", None)], "b": [("a", None), ("c", None)]}
    facts = fixed_point({"a": True}, edges, or_join)
    assert facts == {"a": True, "b": True, "c": True}


# -- the layer contract ------------------------------------------------------


def test_layer_of():
    assert layer_of("repro.engine.store") == "engine"
    assert layer_of("repro.rng") == "rng"
    assert layer_of("loose") == "loose"


def test_contract_leaf_layers_import_almost_nothing():
    assert LAYER_CONTRACT["rng"]["forbid"] == ("*",)
    assert "engine" in LAYER_CONTRACT["workloads"]["forbid"]
    assert "forest" in LAYER_CONTRACT["service"]["forbid"]
    # every forbid/allow entry names a real layer, the wildcard, or one
    # of the unconstrained top layers (api/cli may import anything, so
    # they carry no contract entry of their own)
    layers = set(LAYER_CONTRACT) | {"*", "api", "cli"}
    for rules in LAYER_CONTRACT.values():
        for target in (*rules["forbid"], *rules.get("allow", ())):
            assert target in layers
