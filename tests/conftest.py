"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentScale
from repro.space import (
    BooleanParameter,
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_space() -> ParameterSpace:
    """A small space exercising every parameter kind."""
    return ParameterSpace(
        [
            OrdinalParameter("tile", [1, 16, 32, 64, 128, 256, 512]),
            IntegerParameter("unroll", 1, 31),
            CategoricalParameter("layout", ["DGZ", "DZG", "GDZ"]),
            BooleanParameter("vec"),
        ]
    )


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """An experiment scale small enough for unit tests (< 1 s per run)."""
    return ExperimentScale(
        name="tiny",
        pool_size=150,
        test_size=120,
        n_init=8,
        n_batch=1,
        n_max=20,
        n_trials=1,
        eval_every=4,
        n_estimators=8,
    )


@pytest.fixture
def regression_data(rng) -> tuple[np.ndarray, np.ndarray]:
    """A smooth nonlinear regression problem with mild noise."""
    X = rng.random((300, 5))
    y = (
        3.0 * X[:, 0]
        + np.sin(6.0 * X[:, 1])
        + 2.0 * (X[:, 2] > 0.5)
        + rng.normal(0.0, 0.05, 300)
    )
    return X, y
