"""Tests for the 12 SPAPT kernel benchmarks."""

import numpy as np
import pytest

from repro.kernels import (
    KERNEL_DESCRIPTORS,
    SPAPT_KERNEL_NAMES,
    make_kernel,
)
from repro.kernels.spapt import REGTILE_SIZES, TILE_SIZES, UNROLL_RANGE


class TestSuiteInventory:
    def test_twelve_kernels(self):
        assert len(SPAPT_KERNEL_NAMES) == 12

    def test_expected_names(self):
        expected = {
            "adi", "atax", "bicgkernel", "correlation", "dgemv3", "gemver",
            "gesummv", "hessian", "jacobi", "lu", "mm", "mvt",
        }
        assert set(SPAPT_KERNEL_NAMES) == expected

    def test_parameter_count_range_matches_paper(self):
        """The paper quotes 8..38 compilation parameters across the suite."""
        counts = [d.n_parameters for d in KERNEL_DESCRIPTORS.values()]
        assert min(counts) == 8
        assert max(counts) == 38

    def test_adi_matches_table_1(self):
        """Table I: 8 tile, 4 unroll-jam, 4 register-tile params + 2 flags."""
        adi = make_kernel("adi")
        d = KERNEL_DESCRIPTORS["adi"]
        assert (d.n_tile, d.n_unroll, d.n_regtile) == (8, 4, 4)
        assert adi.space.n_parameters == 18
        assert adi.space["T1"].values == TILE_SIZES
        assert adi.space["U1"].values == tuple(range(UNROLL_RANGE[0], UNROLL_RANGE[1] + 1))
        assert adi.space["RT1"].values == REGTILE_SIZES
        assert adi.space["SCR"].values == (False, True)
        assert adi.space["VEC"].values == (False, True)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown SPAPT kernel"):
            make_kernel("nope")


@pytest.mark.parametrize("name", SPAPT_KERNEL_NAMES)
class TestEveryKernel:
    def test_times_positive_and_finite(self, name, rng):
        k = make_kernel(name)
        X = k.space.sample_encoded(rng, 200)
        t = k.true_times_encoded(X)
        assert t.shape == (200,)
        assert np.isfinite(t).all() and (t > 0).all()

    def test_deterministic_ground_truth(self, name, rng):
        k1, k2 = make_kernel(name), make_kernel(name)
        X = k1.space.sample_encoded(rng, 30)
        assert np.array_equal(k1.true_times_encoded(X), k2.true_times_encoded(X))

    def test_surface_is_not_flat(self, name, rng):
        k = make_kernel(name)
        t = k.true_times_encoded(k.space.sample_encoded(rng, 400))
        assert t.max() / t.min() > 1.5

    def test_measurement_is_noisy_but_unbiased(self, name, rng):
        k = make_kernel(name)
        X = k.space.sample_encoded(rng, 5)
        truth = k.true_times_encoded(X)
        obs = np.mean([k.measure_encoded(X, np.random.default_rng(s)) for s in range(30)], axis=0)
        # 35-repeat averaging keeps the observation within ~15% of truth
        # (outliers are one-sided, so the mean sits slightly above).
        assert np.all(obs > 0.85 * truth)
        assert np.all(obs < 1.35 * truth)


class TestResponseSurfaceShape:
    def test_sub_second_medians(self, rng):
        """Paper: kernel executions are 'usually less than one second'."""
        medians = []
        for name in SPAPT_KERNEL_NAMES:
            k = make_kernel(name)
            t = k.true_times_encoded(k.space.sample_encoded(rng, 300))
            medians.append(np.median(t))
        assert np.median(medians) < 1.0

    def test_heavy_right_tail(self, rng):
        """Bad configurations are many times slower than the best."""
        k = make_kernel("atax")
        t = k.true_times_encoded(k.space.sample_encoded(rng, 2000))
        assert np.percentile(t, 99) / np.percentile(t, 1) > 5.0

    def test_different_kernels_have_different_surfaces(self, rng):
        a = make_kernel("atax")
        b = make_kernel("bicgkernel")
        # Same parameter count would be needed to compare pointwise; compare
        # distribution medians instead.
        ta = a.true_times_encoded(a.space.sample_encoded(rng, 500))
        tb = b.true_times_encoded(b.space.sample_encoded(rng, 500))
        assert abs(np.median(ta) - np.median(tb)) > 1e-3

    def test_space_sizes_in_paper_band(self):
        """Suite spans huge spaces (largest at least 1e30, per the paper)."""
        sizes = [make_kernel(n).space.log10_size() for n in SPAPT_KERNEL_NAMES]
        assert max(sizes) >= 30.0
