"""Tests for constrained parameter spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    Constraint,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
)
from repro.workloads import get_benchmark


def _space(constraints=()):
    return ParameterSpace(
        [
            OrdinalParameter("a", [1, 2, 4, 8]),
            IntegerParameter("b", 1, 8),
        ],
        constraints=constraints,
    )


def _a_leq_b() -> Constraint:
    return Constraint("a<=b", lambda X: X[:, 0] <= X[:, 1])


class TestConstraintObject:
    def test_holds_shape_checked(self):
        bad = Constraint("bad", lambda X: np.zeros(3))  # wrong dtype
        with pytest.raises(RuntimeError, match="bool"):
            bad.holds(np.zeros((3, 2)))

    def test_name_required(self):
        with pytest.raises(ValueError):
            Constraint("", lambda X: np.ones(len(X), dtype=bool))


class TestConstrainedSpace:
    def test_unconstrained_is_trivially_satisfied(self, rng):
        s = _space()
        assert not s.is_constrained
        assert s.satisfies(s.sample_encoded(rng, 20)).all()
        assert s.feasible_fraction(rng) == 1.0

    def test_samples_respect_constraints(self, rng):
        s = _space([_a_leq_b()])
        X = s.sample_encoded(rng, 200)
        assert (X[:, 0] <= X[:, 1]).all()

    def test_grid_is_filtered(self):
        s = _space([_a_leq_b()])
        grid = s.grid_encoded()
        assert (grid[:, 0] <= grid[:, 1]).all()
        # Exact count: for a in {1,2,4,8}, #b >= a among 1..8 = 8,7,5,1.
        assert len(grid) == 8 + 7 + 5 + 1

    def test_unique_sampling_respects_constraints(self, rng):
        s = _space([_a_leq_b()])
        X = s.sample_unique_encoded(rng, 15)
        assert len({r.tobytes() for r in X}) == 15
        assert (X[:, 0] <= X[:, 1]).all()

    def test_unique_overdraw_detected(self, rng):
        s = _space([_a_leq_b()])
        with pytest.raises(ValueError, match="admissible"):
            s.sample_unique_encoded(rng, 25)  # only 21 admissible

    def test_feasible_fraction_estimate(self, rng):
        s = _space([_a_leq_b()])
        frac = s.feasible_fraction(rng, n_probe=4000)
        assert frac == pytest.approx(21 / 32, abs=0.05)

    def test_infeasible_space_raises(self, rng):
        never = Constraint("never", lambda X: np.zeros(len(X), dtype=bool))
        s = _space([never])
        with pytest.raises(RuntimeError, match="infeasible"):
            s.sample_encoded(rng, 5)


class TestConstrainedKernels:
    def test_trmm_constraint_active(self, rng):
        trmm = get_benchmark("trmm")
        assert trmm.space.is_constrained
        X = trmm.space.sample_encoded(rng, 300)
        names = list(trmm.space.names)
        rt = [names.index(f"RT{i}") for i in (1, 2, 3)]
        t1 = names.index("T1")
        volume = X[:, rt].prod(axis=1)
        assert ((X[:, t1] <= 1.0) | (volume <= X[:, t1])).all()

    def test_tensor_unroll_product_bounded(self, rng):
        tensor = get_benchmark("tensor")
        X = tensor.space.sample_encoded(rng, 300)
        u_cols = [j for j, n in enumerate(tensor.space.names) if n.startswith("U")]
        assert (X[:, u_cols].prod(axis=1) <= 2.0**21).all()

    def test_paper_kernels_unconstrained(self):
        """The paper's 12 kernels are modelled without constraints."""
        assert not get_benchmark("atax").space.is_constrained

    def test_describe_lists_constraints(self):
        text = get_benchmark("trmm").space.describe()
        assert "constraint:" in text


@given(seed=st.integers(0, 500), n=st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_property_rejection_sampling_stays_uniform_over_admissible(seed, n):
    """Every admissible cell remains reachable under rejection sampling."""
    rng = np.random.default_rng(seed)
    s = _space([_a_leq_b()])
    X = s.sample_encoded(rng, n)
    assert s.satisfies(X).all()
    assert X.shape == (n, 2)
