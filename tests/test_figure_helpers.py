"""Unit tests for figure-rendering helpers (no experiments involved)."""

import numpy as np

from repro.cli import _trace_from_dict
from repro.experiments.aggregate import AveragedTrace
from repro.experiments.figures import FigureResult, _occupancy_grid


class TestFigureResult:
    def test_render_contains_panels(self):
        r = FigureResult(name="Fig. X", description="demo")
        r.panels["panel-a"] = "AAA"
        r.panels["panel-b"] = "BBB"
        text = r.render()
        assert "Fig. X" in text and "demo" in text
        assert "panel-a" in text and "AAA" in text
        assert text.index("panel-a") < text.index("panel-b")


class TestOccupancyGrid:
    def test_marks_selected_counts(self, rng):
        mu = rng.random(200)
        sigma = rng.random(200)
        mask = np.zeros(200, dtype=bool)
        mask[:10] = True
        text = _occupancy_grid(mu, sigma, mask, n_bins=5)
        digits = [c for line in text.splitlines()[1:] for c in line if c.isdigit()]
        assert sum(int(d) for d in digits) >= 10 - 9  # 9-caps may clip

    def test_no_selection_grid_is_dots(self, rng):
        mu = rng.random(50)
        sigma = rng.random(50)
        text = _occupancy_grid(mu, sigma, np.zeros(50, dtype=bool), n_bins=4)
        assert not any(c.isdigit() for c in text.replace("high", "").replace("low", ""))


class TestTraceRehydration:
    def test_round_trip(self):
        trace = AveragedTrace(
            strategy="pwu",
            n_train=np.array([10, 20]),
            cc_mean=np.array([1.0, 2.0]),
            cc_std=np.array([0.1, 0.2]),
            rmse_mean={"0.05": np.array([0.5, 0.4])},
            rmse_std={"0.05": np.array([0.05, 0.04])},
            n_trials=3,
        )
        back = _trace_from_dict(trace.to_dict())
        assert back.strategy == trace.strategy
        assert np.array_equal(back.n_train, trace.n_train)
        assert np.array_equal(back.rmse_mean["0.05"], trace.rmse_mean["0.05"])
        assert back.n_trials == 3
