"""The lint gate: the shipped tree must be violation-free.

This is the test the static reproducibility contract hangs off — every
``src/repro`` module passes all eight rules under the default
configuration, and the committed baseline stays empty (nothing is
grandfathered).
"""

import json
from pathlib import Path

from repro.analysis import default_config, lint_paths

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "lint-baseline.json"


def _render(findings):
    return "\n".join(f.render() for f in findings)


def test_src_tree_is_lint_clean():
    """src/repro has zero findings under the default contract."""
    result = lint_paths([ROOT / "src" / "repro"], config=default_config())
    assert result.files_scanned > 50
    assert not result.findings, f"lint regressions:\n{_render(result.findings)}"
    assert result.exit_code == 0


def test_full_default_walk_is_clean_with_committed_baseline():
    """The exact surface CI lints (src, tests, benchmarks) passes."""
    paths = [ROOT / p for p in ("src", "tests", "benchmarks") if (ROOT / p).is_dir()]
    result = lint_paths(
        paths, config=default_config(), baseline_path=str(BASELINE)
    )
    assert not result.findings, f"lint regressions:\n{_render(result.findings)}"
    assert result.exit_code == 0


def test_committed_baseline_is_empty():
    """Nothing is grandfathered: the shipped baseline has no entries."""
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert payload["schema"] == 1
    assert payload["findings"] == []


def test_every_suppression_in_src_carries_a_reason():
    """No reason-less ``repro: allow`` markers hide in the tree."""
    from repro.analysis.suppress import parse_suppressions

    bad = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        table = parse_suppressions(
            path.read_text(encoding="utf-8").splitlines()
        )
        for line, supps in table.items():
            for supp in supps:
                if not supp.valid:
                    bad.append(f"{path}:{line} allow[{supp.rule}] has no reason")
    assert not bad, "\n".join(bad)
