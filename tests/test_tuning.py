"""Tests for model-based tuning (Fig. 8 machinery)."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor
from repro.tuning import TuningResult, model_based_tuning, surrogate_annotator
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def bench():
    return get_benchmark("mvt")


@pytest.fixture(scope="module")
def candidates(bench):
    rng = np.random.default_rng(3)
    return bench.space.sample_unique_encoded(rng, 200)


class TestModelBasedTuning:
    def test_best_so_far_never_worsens(self, bench, candidates):
        res = model_based_tuning(
            bench,
            candidates,
            annotate=lambda X: bench.measure_encoded(X, 0),
            annotator_name="truth",
            n_iterations=15,
            seed=0,
        )
        assert (np.diff(res.best_true_time) <= 1e-12).all()

    def test_trace_lengths(self, bench, candidates):
        res = model_based_tuning(
            bench,
            candidates,
            annotate=lambda X: bench.measure_encoded(X, 0),
            annotator_name="truth",
            n_iterations=10,
            n_init=5,
            seed=0,
        )
        assert len(res.n_evaluated) == len(res.best_true_time) == 10
        assert res.n_evaluated[0] == 6
        assert res.n_evaluated[-1] == 15

    def test_tuning_beats_first_random_draws(self, bench, candidates):
        """Model-based search should end at or below its starting point and
        find something clearly better than the candidate median."""
        res = model_based_tuning(
            bench,
            candidates,
            annotate=lambda X: bench.measure_encoded(X, 1),
            annotator_name="truth",
            n_iterations=30,
            seed=1,
        )
        truth = bench.true_times_encoded(candidates)
        assert res.final_best() <= res.best_true_time[0]
        assert res.final_best() < np.median(truth)

    def test_surrogate_annotator_wraps_predict(self, bench, candidates, rng):
        y = bench.measure_encoded(candidates, rng)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(candidates, y)
        ann = surrogate_annotator(model)
        assert np.allclose(ann(candidates[:5]), model.predict(candidates[:5]))

    def test_surrogate_tuning_runs_without_measuring(self, bench, candidates, rng):
        """With a surrogate annotator the oracle is never called."""
        y = bench.measure_encoded(candidates, rng)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(candidates, y)
        res = model_based_tuning(
            bench,
            candidates,
            annotate=surrogate_annotator(model),
            annotator_name="surrogate",
            n_iterations=10,
            seed=2,
        )
        assert isinstance(res, TuningResult)
        assert res.final_best() > 0

    def test_candidate_set_too_small(self, bench, candidates):
        with pytest.raises(ValueError, match="too small"):
            model_based_tuning(
                bench,
                candidates[:10],
                annotate=lambda X: bench.measure_encoded(X, 0),
                annotator_name="truth",
                n_iterations=10,
                n_init=5,
            )

    def test_bad_iterations(self, bench, candidates):
        with pytest.raises(ValueError):
            model_based_tuning(
                bench,
                candidates,
                annotate=lambda X: bench.measure_encoded(X, 0),
                annotator_name="truth",
                n_iterations=0,
            )

    def test_best_config_is_among_annotated(self, bench, candidates):
        res = model_based_tuning(
            bench,
            candidates,
            annotate=lambda X: bench.measure_encoded(X, 0),
            annotator_name="truth",
            n_iterations=8,
            seed=4,
        )
        rows = {row.tobytes() for row in candidates}
        assert res.best_config.tobytes() in rows
