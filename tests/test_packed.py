"""Unit tests for the packed-forest SoA and the v2 serialisation format."""

from __future__ import annotations

import numpy as np
import pytest

import repro.forest._cgrower as _cgrower
from repro.forest import PackedForest, RandomForestRegressor, load_forest, save_forest
from repro.forest.packed import FIELDS

_TREE_FIELDS = (
    "feature_",
    "threshold_",
    "left_",
    "right_",
    "value_",
    "variance_",
    "count_",
    "impurity_",
)


def _fitted_forest(rng, n=120, d=5, n_estimators=6, **kw):
    X = rng.normal(size=(n, d))
    y = np.abs(rng.normal(size=n)) + 0.1
    return RandomForestRegressor(n_estimators=n_estimators, seed=rng, **kw).fit(X, y), X


class TestPacking:
    def test_from_trees_to_trees_round_trip(self, rng):
        model, _ = _fitted_forest(rng)
        packed = PackedForest.from_trees(model.trees_)
        assert packed.n_trees == len(model.trees_)
        assert packed.n_nodes == sum(len(t.feature_) for t in model.trees_)
        back = packed.to_trees()
        for orig, restored in zip(model.trees_, back):
            for field in _TREE_FIELDS:
                a, b = getattr(orig, field), getattr(restored, field)
                assert a.dtype == b.dtype
                assert (a == b).all(), field
            assert restored.n_features_ == orig.n_features_

    def test_child_links_are_rebased_to_global_ids(self, rng):
        model, _ = _fitted_forest(rng)
        packed = PackedForest.from_trees(model.trees_)
        internal = packed.feature >= 0
        # Every internal node's children land inside the same tree's slice.
        tree_of = np.searchsorted(packed.offsets, np.arange(packed.n_nodes), "right") - 1
        for child in (packed.left[internal], packed.right[internal]):
            assert (child >= 0).all()
            assert (tree_of[child] == tree_of[np.flatnonzero(internal)]).all()
        # Leaves carry no children.
        assert (packed.left[~internal] == -1).all()
        assert (packed.right[~internal] == -1).all()

    def test_from_trees_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            PackedForest.from_trees([])

    def test_offsets_validation(self, rng):
        model, _ = _fitted_forest(rng, n_estimators=2)
        packed = PackedForest.from_trees(model.trees_)
        arrays = packed.arrays()
        with pytest.raises(ValueError, match="offsets"):
            PackedForest(*arrays.values(), offsets=np.array([0]), n_features=5)
        bad = packed.offsets.copy()
        bad[-1] += 3
        with pytest.raises(ValueError, match="nodes"):
            PackedForest(*arrays.values(), offsets=bad, n_features=5)


class TestTraversal:
    @pytest.fixture(params=["c-kernel", "numpy-fallback"])
    def kernel_mode(self, request, monkeypatch):
        if request.param == "numpy-fallback":
            monkeypatch.setattr(_cgrower, "_lib", None)
            monkeypatch.setattr(_cgrower, "_attempted", True)
        elif _cgrower.load() is None:
            pytest.skip("C kernel unavailable in this environment")
        return request.param

    def test_predict_all_matches_per_tree_loop(self, rng, kernel_mode):
        model, X = _fitted_forest(rng)
        Q = np.ascontiguousarray(X[:40])
        packed = PackedForest.from_trees(model.trees_)
        expected = np.stack([t.predict(Q) for t in model.trees_])
        assert (packed.predict_all(Q) == expected).all()

    def test_apply_matches_per_tree_apply(self, rng, kernel_mode):
        model, X = _fitted_forest(rng)
        Q = np.ascontiguousarray(X[:40])
        packed = PackedForest.from_trees(model.trees_)
        leaves = packed.apply(Q)
        for t, tree in enumerate(model.trees_):
            assert (leaves[t] - int(packed.offsets[t]) == tree.apply(Q)).all()

    def test_leaf_stats_all_matches_per_tree(self, rng, kernel_mode):
        model, X = _fitted_forest(rng)
        Q = np.ascontiguousarray(X[:40])
        packed = PackedForest.from_trees(model.trees_)
        M, V, C = packed.leaf_stats_all(Q)
        for t, tree in enumerate(model.trees_):
            m, v, c = tree.leaf_stats(Q)
            assert (M[t] == m).all() and (V[t] == v).all() and (C[t] == c).all()

    def test_predict_trees_subset(self, rng, kernel_mode):
        model, X = _fitted_forest(rng, n_estimators=8)
        Q = np.ascontiguousarray(X[:25])
        packed = PackedForest.from_trees(model.trees_)
        ids = np.array([6, 0, 3])
        sub = packed.predict_trees(Q, ids)
        assert sub.shape == (3, 25)
        full = packed.predict_all(Q)
        assert (sub == full[ids]).all()


class TestSerializeV2:
    def test_round_trip_predictions_identical(self, rng, tmp_path):
        model, X = _fitted_forest(rng, uncertainty="total_variance")
        path = tmp_path / "forest.npz"
        save_forest(model, str(path))
        loaded = load_forest(str(path))
        assert loaded.uncertainty == "total_variance"
        assert (loaded.predict(X) == model.predict(X)).all()
        mu_a, sd_a = model.predict_with_uncertainty(X)
        mu_b, sd_b = loaded.predict_with_uncertainty(X)
        assert (mu_a == mu_b).all() and (sd_a == sd_b).all()
        assert (
            loaded.per_tree_predictions(X) == model.per_tree_predictions(X)
        ).all()

    def test_saved_file_is_packed_format(self, rng, tmp_path):
        model, _ = _fitted_forest(rng)
        path = tmp_path / "forest.npz"
        save_forest(model, str(path))
        with np.load(path) as data:
            assert int(data["format_version"]) == 2
            for name in FIELDS:
                assert f"packed_{name}" in data
            assert len(data["offsets"]) == len(model.trees_) + 1

    def test_unfitted_forest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_forest(RandomForestRegressor(), str(tmp_path / "x.npz"))

    def test_loads_v1_format(self, rng, tmp_path):
        model, X = _fitted_forest(rng, n_estimators=4)
        payload = {
            "format_version": np.asarray(1),
            "n_trees": np.asarray(len(model.trees_)),
            "n_features": np.asarray(model.trees_[0].n_features_),
            "uncertainty": np.asarray(model.uncertainty),
        }
        for i, tree in enumerate(model.trees_):
            for field in _TREE_FIELDS:
                payload[f"tree{i}_{field}"] = getattr(tree, field)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **payload)
        loaded = load_forest(str(path))
        assert (loaded.predict(X) == model.predict(X)).all()
        mu_a, sd_a = model.predict_with_uncertainty(X)
        mu_b, sd_b = loaded.predict_with_uncertainty(X)
        assert (mu_a == mu_b).all() and (sd_a == sd_b).all()

    def test_unknown_version_rejected(self, rng, tmp_path):
        model, _ = _fitted_forest(rng, n_estimators=2)
        path = tmp_path / "forest.npz"
        save_forest(model, str(path))
        with np.load(path) as data:
            payload = dict(data)
        payload["format_version"] = np.asarray(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version 99"):
            load_forest(str(path))
