"""Tests for the seeding utilities."""

import numpy as np
import pytest

from repro.rng import as_generator, check_entropy_keys, derive, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g


class TestSpawn:
    def test_children_are_independent_streams(self):
        kids = spawn(7, 3)
        draws = [k.integers(0, 2**31, 5) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_same_seed(self):
        a = [g.integers(0, 2**31, 4) for g in spawn(9, 2)]
        b = [g.integers(0, 2**31, 4) for g in spawn(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_zero_is_empty(self):
        assert spawn(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_spawn_from_generator(self):
        kids = spawn(np.random.default_rng(3), 2)
        assert len(kids) == 2


class TestDerive:
    def test_same_keys_same_stream(self):
        a = derive(5, "atax", 1).integers(0, 2**31, 6)
        b = derive(5, "atax", 1).integers(0, 2**31, 6)
        assert np.array_equal(a, b)

    def test_different_keys_different_stream(self):
        a = derive(5, "atax").integers(0, 2**31, 6)
        b = derive(5, "mm").integers(0, 2**31, 6)
        assert not np.array_equal(a, b)

    def test_string_key_stable_across_calls(self):
        # Python's builtin hash() is salted; ours must not be.
        a = derive(None, "kernel-name").integers(0, 2**31, 4)
        b = derive(None, "kernel-name").integers(0, 2**31, 4)
        assert np.array_equal(a, b)

    def test_key_type_validation(self):
        with pytest.raises(TypeError):
            check_entropy_keys([3.14])

    def test_accepts_seedsequence(self):
        ss = np.random.SeedSequence(11)
        assert isinstance(derive(ss, "x"), np.random.Generator)
