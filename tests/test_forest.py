"""Tests for the random-forest regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RandomForestRegressor


class TestValidation:
    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_bad_uncertainty(self):
        with pytest.raises(ValueError, match="uncertainty"):
            RandomForestRegressor(uncertainty="magic")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            RandomForestRegressor().fit(np.zeros((4, 2)), np.zeros(3))

    def test_1d_X_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            RandomForestRegressor().fit(np.zeros(4), np.zeros(4))


class TestFitPredict:
    def test_learns_signal(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=20, seed=0).fit(X[:250], y[:250])
        pred = rf.predict(X[250:])
        err = np.sqrt(np.mean((pred - y[250:]) ** 2))
        assert err < 0.5 * y.std()

    def test_reproducible_with_seed(self, regression_data):
        X, y = regression_data
        p1 = RandomForestRegressor(n_estimators=10, seed=7).fit(X, y).predict(X[:20])
        p2 = RandomForestRegressor(n_estimators=10, seed=7).fit(X, y).predict(X[:20])
        assert np.array_equal(p1, p2)

    def test_per_tree_predictions_shape(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=12, seed=0).fit(X, y)
        P = rf.per_tree_predictions(X[:30])
        assert P.shape == (12, 30)

    def test_mean_of_trees_is_prediction(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=9, seed=1).fit(X, y)
        P = rf.per_tree_predictions(X[:15])
        assert np.allclose(rf.predict(X[:15]), P.mean(axis=0))

    def test_predictions_within_target_range(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=10, seed=2).fit(X, y)
        pred = rf.predict(np.random.default_rng(0).random((200, X.shape[1])))
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12

    def test_no_bootstrap_no_subspace_interpolates(self, rng):
        X = rng.random((50, 3))
        y = rng.normal(size=50)
        rf = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        assert np.allclose(rf.predict(X), y, atol=1e-10)

    def test_n_training_samples(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=3, seed=0)
        assert rf.n_training_samples == 0
        rf.fit(X, y)
        assert rf.n_training_samples == len(y)


class TestUncertainty:
    def test_sigma_nonnegative(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=15, seed=3).fit(X, y)
        _, sigma = rf.predict_with_uncertainty(X[:50])
        assert (sigma >= 0).all()

    def test_mu_matches_predict(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=15, seed=3).fit(X, y)
        mu, _ = rf.predict_with_uncertainty(X[:50])
        assert np.allclose(mu, rf.predict(X[:50]))

    def test_total_variance_at_least_across_trees(self, regression_data):
        """Law of total variance adds the within-leaf term, so σ_total ≥ σ_trees."""
        X, y = regression_data
        rf_a = RandomForestRegressor(
            n_estimators=15, seed=5, uncertainty="across_trees"
        ).fit(X, y)
        rf_t = RandomForestRegressor(
            n_estimators=15, seed=5, uncertainty="total_variance"
        ).fit(X, y)
        _, s_a = rf_a.predict_with_uncertainty(X[:40])
        _, s_t = rf_t.predict_with_uncertainty(X[:40])
        assert (s_t >= s_a - 1e-9).all()

    def test_uncertainty_shrinks_with_data_density(self, rng):
        """Regions saturated with training data get lower σ than empty ones."""
        X_dense = rng.random((300, 2)) * 0.4  # cluster in [0, 0.4]^2
        y = X_dense.sum(axis=1) + rng.normal(0, 0.01, 300)
        rf = RandomForestRegressor(n_estimators=25, seed=0).fit(X_dense, y)
        _, s_in = rf.predict_with_uncertainty(rng.random((100, 2)) * 0.4)
        _, s_out = rf.predict_with_uncertainty(0.8 + rng.random((100, 2)) * 0.2)
        assert s_in.mean() < s_out.mean()


class TestPartialUpdate:
    def test_update_unfitted_acts_as_fit(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=5, seed=0)
        rf.update(X, y)
        assert rf.n_training_samples == len(y)

    def test_update_appends_data(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=5, seed=0).fit(X[:100], y[:100])
        rf.update(X[100:150], y[100:150], refresh_fraction=0.5)
        assert rf.n_training_samples == 150

    def test_update_refreshes_at_least_one_tree(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=10, seed=0).fit(X[:50], y[:50])
        before = [t for t in rf.trees_]
        rf.update(X[50:60], y[50:60], refresh_fraction=0.01)
        changed = sum(a is not b for a, b in zip(before, rf.trees_))
        assert changed >= 1

    def test_full_refresh_replaces_all_trees(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=6, seed=0).fit(X[:50], y[:50])
        before = list(rf.trees_)
        rf.update(X[50:60], y[50:60], refresh_fraction=1.0)
        assert all(a is not b for a, b in zip(before, rf.trees_))

    def test_bad_refresh_fraction(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=3, seed=0).fit(X[:20], y[:20])
        with pytest.raises(ValueError, match="refresh_fraction"):
            rf.update(X[20:25], y[20:25], refresh_fraction=0.0)

    def test_update_shape_mismatch(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=3, seed=0).fit(X[:20], y[:20])
        with pytest.raises(ValueError, match="rows"):
            rf.update(X[20:25], y[20:22])


class TestFeatureImportances:
    def test_normalised(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=10, seed=1).fit(X, y)
        imp = rf.feature_importances()
        assert imp.sum() == pytest.approx(1.0)
        assert (imp >= 0).all()

    def test_identifies_strong_feature(self, rng):
        X = rng.random((300, 4))
        y = 8.0 * X[:, 2] + rng.normal(0, 0.05, 300)
        rf = RandomForestRegressor(n_estimators=10, seed=1).fit(X, y)
        assert rf.feature_importances().argmax() == 2


@given(seed=st.integers(0, 2000), n_trees=st.integers(1, 12))
@settings(max_examples=15, deadline=None)
def test_property_sigma_zero_when_trees_agree(seed, n_trees):
    """If all trees are identical (no randomness), across-tree σ is 0."""
    rng = np.random.default_rng(seed)
    X = rng.random((30, 2))
    y = rng.normal(size=30)
    rf = RandomForestRegressor(
        n_estimators=n_trees, bootstrap=False, max_features=None, seed=0
    ).fit(X, y)
    _, sigma = rf.predict_with_uncertainty(rng.random((20, 2)))
    assert np.allclose(sigma, 0.0, atol=1e-12)
