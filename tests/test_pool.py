"""Tests for DataPool bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import DataPool


@pytest.fixture
def pool() -> DataPool:
    return DataPool(np.arange(40, dtype=float).reshape(20, 2))


class TestConstruction:
    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            DataPool(np.arange(5.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            DataPool(np.empty((0, 3)))

    def test_matrix_is_immutable(self, pool):
        with pytest.raises(ValueError):
            pool.X[0, 0] = 99.0


class TestTake:
    def test_take_returns_rows(self, pool):
        rows = pool.take([3, 5])
        assert np.array_equal(rows, pool.X[[3, 5]])

    def test_take_removes_from_available(self, pool):
        pool.take([0, 1, 2])
        assert pool.n_available == 17
        assert not pool.is_available(1)
        assert 0 not in pool.available_indices()

    def test_double_take_rejected(self, pool):
        pool.take([4])
        with pytest.raises(ValueError, match="already taken"):
            pool.take([4])

    def test_duplicate_in_batch_rejected(self, pool):
        with pytest.raises(ValueError, match="duplicate"):
            pool.take([1, 1])

    def test_out_of_range_rejected(self, pool):
        with pytest.raises(IndexError):
            pool.take([25])
        with pytest.raises(IndexError):
            pool.take([-1])

    def test_empty_take_is_noop(self, pool):
        rows = pool.take([])
        assert rows.shape == (0, 2)
        assert pool.n_available == 20

    def test_indices_stay_global(self, pool):
        pool.take([0, 1])
        rows = pool.take([19])
        assert np.array_equal(rows[0], pool.X[19])


class TestViews:
    def test_available_X_matches_indices(self, pool):
        pool.take([2, 7])
        assert np.array_equal(pool.available_X(), pool.X[pool.available_indices()])

    def test_len_is_available_count(self, pool):
        assert len(pool) == 20
        pool.take([0])
        assert len(pool) == 19

    def test_reset_restores_everything(self, pool):
        pool.take(list(range(10)))
        pool.reset()
        assert pool.n_available == 20


@given(
    picks=st.lists(st.integers(0, 19), min_size=1, max_size=20, unique=True)
)
@settings(max_examples=30, deadline=None)
def test_property_take_conserves_rows(picks):
    """taken ∪ available is always a partition of the pool."""
    pool = DataPool(np.arange(40, dtype=float).reshape(20, 2))
    pool.take(picks)
    remaining = set(pool.available_indices().tolist())
    assert remaining.isdisjoint(picks)
    assert remaining | set(picks) == set(range(20))
