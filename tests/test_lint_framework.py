"""Framework mechanics: suppressions, baseline, fingerprints, config.

Also pins the shared registry-hygiene contract (satellite of the lint
PR): the rule registry, the sampling-strategy registry, and the
benchmark registry all reject duplicate registration loudly instead of
silently shadowing.
"""

import json

import pytest

from repro.analysis import (
    LintUsageError,
    lint_paths,
    permissive_config,
)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.suppress import parse_suppressions, suppression_for


def _lint(tmp_path, source, name="mod.py", **kwargs):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_paths([path], config=permissive_config(), **kwargs)


# -- suppressions ------------------------------------------------------------


def test_reasonless_suppression_does_not_suppress(tmp_path):
    result = _lint(
        tmp_path, "import time\nt = time.time()  # repro: allow[DET002]\n"
    )
    assert [f.rule for f in result.findings] == ["DET002"]
    assert "missing reason" in result.findings[0].message
    assert result.suppressed == []


def test_suppression_on_line_above_covers_next_line(tmp_path):
    result = _lint(
        tmp_path,
        "import time\n# repro: allow[DET002] scheduling only\nt = time.time()\n",
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_suppression_does_not_reach_two_lines_down(tmp_path):
    result = _lint(
        tmp_path,
        "import time\n# repro: allow[DET002] too far away\n\nt = time.time()\n",
    )
    assert [f.rule for f in result.findings] == ["DET002"]


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    result = _lint(
        tmp_path,
        "import time\nt = time.time()  # repro: allow[DET001] wrong rule\n",
    )
    assert [f.rule for f in result.findings] == ["DET002"]


def test_two_markers_share_one_line(tmp_path):
    result = _lint(
        tmp_path,
        "import os, time\n"
        "t = (time.time(), os.getenv('X'))"
        "  # repro: allow[DET002] fixture allow[DET004] fixture\n",
    )
    assert result.findings == []
    assert sorted(s.rule for _, s in result.suppressed) == ["DET002", "DET004"]


def test_parse_suppressions_table_shape():
    table = parse_suppressions(
        ["x = 1", "y = 2  # repro: allow[IO001] because reasons"]
    )
    assert set(table) == {2}
    supp = suppression_for(table, 2, "IO001")
    assert supp is not None and supp.valid and supp.reason == "because reasons"
    assert suppression_for(table, 3, "IO001") is not None  # line below
    assert suppression_for(table, 4, "IO001") is None


def test_suppression_above_multiline_statement_covers_inner_lines(tmp_path):
    """The marker anchors to the statement, not the physical line."""
    result = _lint(
        tmp_path,
        "import time\n"
        "# repro: allow[DET002] scheduling only\n"
        "stamp = (\n"
        "    1,\n"
        "    time.time(),\n"
        ")\n",
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_suppression_on_multiline_statement_head_covers_inner_lines(tmp_path):
    result = _lint(
        tmp_path,
        "import time\n"
        "stamp = (  # repro: allow[DET002] scheduling only\n"
        "    time.time(),\n"
        ")\n",
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_suppression_on_block_head_does_not_blanket_the_body(tmp_path):
    """A marker above an ``if`` covers the ``if`` line, not every
    single-line statement nested inside the block."""
    result = _lint(
        tmp_path,
        "import time\n"
        "# repro: allow[DET002] head only\n"
        "if True:\n"
        "    x = 1\n"
        "    t = time.time()\n",
    )
    assert [f.rule for f in result.findings] == ["DET002"]


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_survives_line_shift(tmp_path):
    a = _lint(tmp_path, "import time\nt = time.time()\n", name="a.py")
    b = _lint(
        tmp_path, "import time\n\n\n\nt = time.time()\n", name="a.py"
    )
    (fa,), (fb,) = a.findings, b.findings
    assert fa.line != fb.line
    assert fa.fingerprint == fb.fingerprint


def test_fingerprint_distinguishes_identical_lines(tmp_path):
    result = _lint(
        tmp_path, "import time\nt = time.time()\nu = time.time()\nt = time.time()\n"
    )
    prints = [f.fingerprint for f in result.findings]
    assert len(prints) == 3 and len(set(prints)) == 3


# -- baseline ----------------------------------------------------------------


def _io_finding(file="pkg/m.py"):
    return Finding(
        file=file, line=3, col=4, rule="IO001", message="raw write"
    ).with_fingerprint("    open(p, 'w')", 0)


def test_baseline_round_trip_absorbs_finding(tmp_path):
    src = "def f(p):\n    with open(p, 'w') as fh:\n        fh.write('x')\n"
    first = _lint(tmp_path, src, name="m.py")
    assert [f.rule for f in first.findings] == ["IO001"]

    baseline_file = tmp_path / "baseline.json"
    assert write_baseline(str(baseline_file), first.findings) == 1

    again = _lint(
        tmp_path, src, name="m.py", baseline_path=str(baseline_file)
    )
    assert again.findings == []
    assert again.baselined == 1
    assert again.exit_code == 0


def test_baseline_unmatches_when_offending_line_changes(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    first = _lint(
        tmp_path,
        "def f(p):\n    with open(p, 'w') as fh:\n        fh.write('x')\n",
        name="m.py",
    )
    write_baseline(str(baseline_file), first.findings)
    changed = _lint(
        tmp_path,
        "def f(p):\n    with open(p, 'w+') as fh:\n        fh.write('y')\n",
        name="m.py",
        baseline_path=str(baseline_file),
    )
    assert [f.rule for f in changed.findings] == ["IO001"]
    assert changed.baselined == 0


def test_write_baseline_refuses_determinism_rules(tmp_path):
    det = Finding(
        file="m.py", line=1, col=0, rule="DET001", message="rng"
    ).with_fingerprint("random.random()", 0)
    with pytest.raises(LintUsageError, match="may not be baselined"):
        write_baseline(str(tmp_path / "b.json"), [det])


@pytest.mark.parametrize("rule_id", ["DET002", "SPAWN001"])
def test_load_baseline_refuses_crafted_determinism_entries(tmp_path, rule_id):
    path = tmp_path / "b.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "findings": [
                    {"file": "m.py", "rule": rule_id, "fingerprint": "ab" * 8}
                ],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(LintUsageError, match="may not be baselined"):
        load_baseline(str(path))


def test_load_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('{"schema": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(LintUsageError, match="schema"):
        load_baseline(str(path))


# -- config overrides --------------------------------------------------------


def test_select_disables_every_other_rule(tmp_path):
    src = "import time, os\nt = time.time()\nv = os.getenv('X')\n"
    config = permissive_config().with_overrides(select=("DET004",))
    path = tmp_path / "m.py"
    path.write_text(src, encoding="utf-8")
    result = lint_paths([path], config=config)
    assert [f.rule for f in result.findings] == ["DET004"]


def test_disable_drops_one_rule(tmp_path):
    src = "import time, os\nt = time.time()\nv = os.getenv('X')\n"
    config = permissive_config().with_overrides(disable=("DET002",))
    path = tmp_path / "m.py"
    path.write_text(src, encoding="utf-8")
    result = lint_paths([path], config=config)
    assert [f.rule for f in result.findings] == ["DET004"]


def test_severity_warning_does_not_fail_the_run(tmp_path):
    config = permissive_config().with_overrides(
        severities={"DET002": "warning"}
    )
    path = tmp_path / "m.py"
    path.write_text("import time\nt = time.time()\n", encoding="utf-8")
    result = lint_paths([path], config=config)
    assert [f.severity for f in result.findings] == ["warning"]
    assert result.exit_code == 0


def test_unknown_rule_id_raises():
    with pytest.raises(LintUsageError, match="unknown rule id"):
        permissive_config().with_overrides(disable=("NOPE999",))


def test_unknown_severity_raises():
    from repro.analysis.config import RuleConfig

    with pytest.raises(LintUsageError, match="unknown severity"):
        RuleConfig(severity="fatal")


def test_missing_path_is_a_usage_error():
    with pytest.raises(LintUsageError, match="does not exist"):
        lint_paths(["definitely/not/a/path"], config=permissive_config())


# -- registry hygiene (lint registry + domain registries) --------------------


def test_rule_registry_rejects_duplicate_ids():
    from repro.analysis.rules import rule

    with pytest.raises(ValueError, match="already registered"):
        rule("DET001", "impostor")(lambda module: [])


def test_sampling_registry_rejects_duplicate_strategy():
    from repro.sampling.registry import (
        available_strategies,
        get_strategy,
        register_strategy,
    )

    name = available_strategies()[0]
    with pytest.raises(ValueError, match="already registered"):
        register_strategy(name, lambda alpha: None)
    # The loud path must not have clobbered the real factory.
    assert get_strategy(name, alpha=0.05) is not None


def test_sampling_registry_overwrite_is_explicit():
    from repro.sampling import registry

    sentinel_calls = []
    register = registry.register_strategy
    register("_lint_test_dup", lambda alpha: sentinel_calls.append(alpha))
    try:
        with pytest.raises(ValueError, match="overwrite=True"):
            register("_lint_test_dup", lambda alpha: None)
        register("_lint_test_dup", lambda alpha: None, overwrite=True)
    finally:
        registry._REGISTRY.pop("_lint_test_dup", None)


def test_workload_registry_rejects_duplicate_benchmark():
    from repro.workloads import all_benchmarks
    from repro.workloads.registry import register_benchmark

    name = all_benchmarks()[0]
    with pytest.raises(ValueError, match="already registered"):
        register_benchmark(name, lambda: None)
