"""The examples must actually run — they are part of the public contract."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "RMSE@5%" in result.stdout
        assert "labeled samples" in result.stdout

    def test_custom_benchmark(self):
        result = _run("custom_benchmark.py")
        assert result.returncode == 0, result.stderr
        assert "pwu" in result.stdout
        assert "random" in result.stdout

    def test_tune_application(self):
        result = _run("tune_application.py")
        assert result.returncode == 0, result.stderr
        assert "best configuration found" in result.stdout
        assert "#process" in result.stdout

    def test_tuning_service(self):
        result = _run("tuning_service.py")
        assert result.returncode == 0, result.stderr
        assert "opened session" in result.stdout
        assert "suggest/report rounds" in result.stdout
        assert "best predicted time" in result.stdout
