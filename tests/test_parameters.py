"""Tests for the parameter types."""

import numpy as np
import pytest

from repro.space import (
    BooleanParameter,
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
)


class TestIntegerParameter:
    def test_values_enumerate_range(self):
        p = IntegerParameter("u", 1, 5)
        assert p.values == (1, 2, 3, 4, 5)

    def test_strided_range(self):
        p = IntegerParameter("u", 0, 10, step=5)
        assert p.values == (0, 5, 10)

    def test_encode_is_identity_on_value(self):
        p = IntegerParameter("u", 1, 31)
        assert p.encode(17) == 17.0

    def test_encode_rejects_out_of_range(self):
        p = IntegerParameter("u", 1, 31)
        with pytest.raises(ValueError, match="admissible"):
            p.encode(32)

    def test_decode_snaps_to_nearest(self):
        p = IntegerParameter("u", 0, 10, step=5)
        assert p.decode(6.9) == 5
        assert p.decode(7.6) == 10
        assert p.decode(-3.0) == 0
        assert p.decode(99.0) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty range"):
            IntegerParameter("u", 5, 4)

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            IntegerParameter("u", 0, 4, step=0)

    def test_is_not_categorical(self):
        assert not IntegerParameter("u", 0, 3).is_categorical


class TestOrdinalParameter:
    def test_tile_sizes(self):
        p = OrdinalParameter("t", [1, 16, 32, 64])
        assert p.n_values == 4
        assert p.encode(32) == 32.0
        assert p.decode(30.0) == 32

    def test_decode_nearest_value(self):
        p = OrdinalParameter("t", [1, 16, 512])
        assert p.decode(200.0) == 16
        assert p.decode(300.0) == 512

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="ascending"):
            OrdinalParameter("t", [16, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            OrdinalParameter("t", [1, 1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            OrdinalParameter("t", [])

    def test_encode_rejects_non_member(self):
        p = OrdinalParameter("t", [1, 16])
        with pytest.raises(ValueError, match="admissible"):
            p.encode(8)


class TestCategoricalParameter:
    def test_encodes_to_index(self):
        p = CategoricalParameter("layout", ["DGZ", "DZG", "GDZ"])
        assert p.encode("DGZ") == 0.0
        assert p.encode("GDZ") == 2.0

    def test_roundtrip(self):
        p = CategoricalParameter("layout", ["a", "b", "c"])
        for v in p.values:
            assert p.decode(p.encode(v)) == v

    def test_is_categorical(self):
        assert CategoricalParameter("c", ["x"]).is_categorical

    def test_decode_out_of_range_raises(self):
        p = CategoricalParameter("c", ["x", "y"])
        with pytest.raises(ValueError, match="out of range"):
            p.decode(5.0)

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CategoricalParameter("c", ["x", "x"])

    def test_numeric_categories_supported(self):
        # hypre solver ids are numeric but categorical.
        p = CategoricalParameter("solver", [0, 1, 18, 61])
        assert p.encode(18) == 2.0
        assert p.decode(3.0) == 61


class TestBooleanParameter:
    def test_values(self):
        assert BooleanParameter("vec").values == (False, True)

    def test_encode_decode(self):
        p = BooleanParameter("vec")
        assert p.encode(True) == 1.0
        assert p.decode(0.2) is False
        assert p.decode(0.8) is True

    def test_rejects_non_bool(self):
        with pytest.raises(ValueError, match="bool"):
            BooleanParameter("vec").encode(1)


class TestSharedBehaviour:
    def test_sample_respects_values(self, rng):
        p = OrdinalParameter("t", [1, 8, 32])
        draws = p.sample(rng, size=200)
        assert set(draws) <= {1, 8, 32}

    def test_sample_single(self, rng):
        p = IntegerParameter("u", 1, 3)
        assert p.sample(rng) in (1, 2, 3)

    def test_sample_codes_match_encode(self, rng):
        p = CategoricalParameter("c", ["x", "y", "z"])
        codes = p.sample_codes(rng, 100)
        assert set(np.unique(codes)) <= {0.0, 1.0, 2.0}

    def test_sample_covers_all_values(self, rng):
        p = OrdinalParameter("t", [1, 8, 32])
        draws = p.sample_codes(rng, 500)
        assert len(np.unique(draws)) == 3

    def test_index_of_unknown_raises(self):
        p = CategoricalParameter("c", ["x"])
        with pytest.raises(ValueError, match="admissible"):
            p.index_of("nope")

    def test_contains(self):
        p = IntegerParameter("u", 1, 4)
        assert 3 in p
        assert 9 not in p

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            IntegerParameter("", 0, 1)
