"""Tests for the PWU score (Equation 1) — the paper's central formula."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RandomForestRegressor
from repro.sampling import PWUSampling, pwu_scores
from repro.space import DataPool


class TestEquationOne:
    def test_formula(self):
        mu = np.array([2.0, 4.0])
        sigma = np.array([1.0, 1.0])
        s = pwu_scores(mu, sigma, alpha=0.05)
        assert s[0] == pytest.approx(1.0 / 2.0**0.95)
        assert s[1] == pytest.approx(1.0 / 4.0**0.95)

    def test_alpha_one_reduces_to_sigma(self):
        """Section II-C: α→1 ⇒ s = σ (pure uncertainty sampling / MaxU)."""
        mu = np.array([0.5, 2.0, 7.0])
        sigma = np.array([0.3, 0.1, 0.2])
        assert np.allclose(pwu_scores(mu, sigma, alpha=1.0), sigma)

    def test_alpha_zero_is_coefficient_of_variation(self):
        """Section II-C: α→0 ⇒ s = σ/μ (the coefficient of variation)."""
        mu = np.array([0.5, 2.0, 7.0])
        sigma = np.array([0.3, 0.1, 0.2])
        assert np.allclose(pwu_scores(mu, sigma, alpha=0.0), sigma / mu)

    def test_faster_config_wins_at_equal_uncertainty(self):
        """The paper's motivating example: same σ, higher performance
        (shorter predicted time) must score higher."""
        mu = np.array([1.0, 3.0])
        sigma = np.array([0.2, 0.2])
        s = pwu_scores(mu, sigma, alpha=0.05)
        assert s[0] > s[1]

    def test_more_uncertain_config_wins_at_equal_performance(self):
        mu = np.array([2.0, 2.0])
        sigma = np.array([0.5, 0.1])
        s = pwu_scores(mu, sigma, alpha=0.05)
        assert s[0] > s[1]

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(ValueError, match="positive"):
            pwu_scores(np.array([0.0]), np.array([1.0]), 0.05)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="non-negative"):
            pwu_scores(np.array([1.0]), np.array([-1.0]), 0.05)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            pwu_scores(np.array([1.0]), np.array([1.0]), 1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            pwu_scores(np.ones(3), np.ones(2), 0.05)


class TestPWUSampling:
    def test_selects_argmax_of_score(self, rng):
        X = rng.random((100, 3))
        y = 1.0 + X[:, 0]
        pool = DataPool(X)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X[:40], y[:40])
        strat = PWUSampling(alpha=0.05)
        picked = strat.select(model, pool, 4, rng)
        mu, sigma = model.predict_with_uncertainty(pool.X)
        scores = pwu_scores(mu, sigma, 0.05)
        top4 = np.sort(scores)[::-1][:4]
        assert np.allclose(np.sort(scores[picked])[::-1], top4)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            PWUSampling(alpha=-0.1)

    def test_alpha_one_matches_maxu(self, rng):
        """Degenerate PWU must make exactly MaxU's choices."""
        from repro.sampling import MaxUncertaintySampling

        X = rng.random((80, 3))
        y = 1.0 + X[:, 1]
        pool_a, pool_b = DataPool(X), DataPool(X)
        model = RandomForestRegressor(n_estimators=12, seed=0).fit(X[:30], y[:30])
        a = PWUSampling(alpha=1.0).select(model, pool_a, 6, rng)
        b = MaxUncertaintySampling().select(model, pool_b, 6, rng)
        assert set(a.tolist()) == set(b.tolist())


@given(
    alpha=st.floats(0.0, 1.0),
    mu_scale=st.floats(0.1, 100.0),
    seed=st.integers(0, 999),
)
@settings(max_examples=60, deadline=None)
def test_property_score_monotonicities(alpha, mu_scale, seed):
    """s increases in σ and decreases in μ, for every α in [0, 1]."""
    rng = np.random.default_rng(seed)
    mu = rng.uniform(0.1, 10.0, 50) * mu_scale
    sigma = rng.uniform(0.0, 5.0, 50)
    s = pwu_scores(mu, sigma, alpha)
    # Monotone in sigma at fixed mu:
    s_up = pwu_scores(mu, sigma + 1.0, alpha)
    assert (s_up >= s).all()
    # Anti-monotone in mu at fixed sigma (strict unless alpha == 1):
    s_slow = pwu_scores(mu * 2.0, sigma, alpha)
    if alpha < 1.0:
        assert (s_slow <= s + 1e-12).all()
    else:
        assert np.allclose(s_slow, s)


@given(seed=st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_property_scale_invariance_of_ranking_at_alpha_zero(seed):
    """At α=0 the CV score's *ranking* is invariant to rescaling time units."""
    rng = np.random.default_rng(seed)
    mu = rng.uniform(0.1, 10.0, 30)
    sigma = rng.uniform(0.01, 2.0, 30)
    r1 = np.argsort(pwu_scores(mu, sigma, 0.0))
    r2 = np.argsort(pwu_scores(mu * 1000.0, sigma * 1000.0, 0.0))
    assert np.array_equal(r1, r2)
