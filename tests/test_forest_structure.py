"""Structural invariants of fitted trees and forests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RandomForestRegressor, RegressionTree


class TestTreeStructure:
    def test_node_count_consistency(self, rng):
        X = rng.random((80, 3))
        tree = RegressionTree(rng=rng).fit(X, rng.normal(size=80))
        # Binary tree: internal = leaves - 1.
        internal = tree.n_nodes - tree.n_leaves
        assert internal == tree.n_leaves - 1

    def test_depth_at_least_log_leaves(self, rng):
        X = rng.random((100, 3))
        tree = RegressionTree(rng=rng).fit(X, rng.normal(size=100))
        assert tree.depth() >= np.ceil(np.log2(tree.n_leaves))

    def test_children_partition_counts(self, rng):
        X = rng.random((120, 2))
        tree = RegressionTree(min_samples_leaf=3, rng=rng).fit(
            X, rng.normal(size=120)
        )
        internal = np.flatnonzero(tree.feature_ != -1)
        for i in internal:
            assert (
                tree.count_[tree.left_[i]] + tree.count_[tree.right_[i]]
                == tree.count_[i]
            )

    def test_leaf_values_are_leaf_means(self, rng):
        X = rng.random((60, 2))
        y = rng.normal(size=60)
        tree = RegressionTree(min_samples_leaf=4, rng=rng).fit(X, y)
        leaves = tree.apply(X)
        for leaf in np.unique(leaves):
            members = y[leaves == leaf]
            assert tree.value_[leaf] == pytest.approx(members.mean())

    def test_repeated_predict_is_stable(self, rng):
        X = rng.random((50, 2))
        tree = RegressionTree(rng=rng).fit(X, rng.normal(size=50))
        q = rng.random((30, 2))
        assert np.array_equal(tree.predict(q), tree.predict(q))


class TestForestStructure:
    def test_trees_differ_under_bootstrap(self, regression_data):
        X, y = regression_data
        rf = RandomForestRegressor(n_estimators=5, seed=0).fit(X, y)
        structures = {t.n_nodes for t in rf.trees_}
        # Bootstrap + subspace randomness: trees are almost surely distinct.
        preds = [t.predict(X[:20]) for t in rf.trees_]
        distinct = any(
            not np.array_equal(preds[0], p) for p in preds[1:]
        ) or len(structures) > 1
        assert distinct

    def test_more_trees_reduce_prediction_variance(self, regression_data):
        """Across refits with different seeds, a bigger ensemble's mean
        prediction wobbles less — the basic bagging variance effect."""
        X, y = regression_data
        q = X[:1]

        def spread(n_estimators):
            preds = [
                RandomForestRegressor(n_estimators=n_estimators, seed=s)
                .fit(X, y)
                .predict(q)[0]
                for s in range(8)
            ]
            return np.std(preds)

        assert spread(25) < spread(2)


@given(seed=st.integers(0, 300), depth=st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_property_depth_limit_respected(seed, depth):
    rng = np.random.default_rng(seed)
    X = rng.random((60, 3))
    y = rng.normal(size=60)
    tree = RegressionTree(max_depth=depth, rng=rng).fit(X, y)
    assert tree.depth() <= depth
