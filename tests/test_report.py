"""Tests for the text/CSV reporting helpers."""

import json

import numpy as np
import pytest

from repro.experiments.report import (
    dump_json,
    format_table,
    series_table,
    sparkline,
    traces_to_csv,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [12345.0], [float("nan")]])
        assert "0.000123" in text
        assert "nan" in text


class TestSparkline:
    def test_monotone_series_ramps(self):
        s = sparkline(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_constant_series_flat(self):
        assert set(sparkline(np.ones(5))) == {"▁"}

    def test_log_mode(self):
        s = sparkline(np.array([1.0, 10.0, 100.0]), log=True)
        assert len(s) == 3

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestSeriesTable:
    def test_contains_all_series_names(self):
        x = np.arange(20)
        series = {"pwu": np.linspace(1, 0, 20), "pbus": np.linspace(1, 0.5, 20)}
        text = series_table(x, series, "n")
        assert "pwu" in text and "pbus" in text
        assert "trend" in text

    def test_subsamples_long_series(self):
        x = np.arange(500)
        text = series_table(x, {"s": np.linspace(0, 1, 500)}, "n", max_rows=8)
        # 8 data rows + header + rule + trend
        assert len(text.splitlines()) <= 12

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            series_table(np.arange(5), {"s": np.arange(4)}, "n")


class TestCSV:
    def test_round_trips_values(self):
        x = np.array([1.0, 2.0])
        csv_text = traces_to_csv(x, {"a": np.array([0.5, 0.25])}, "n")
        lines = csv_text.strip().splitlines()
        assert lines[0] == "n,a"
        assert lines[1] == "1.0,0.5"
        assert lines[2] == "2.0,0.25"


class TestDumpJson:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"b": 2, "a": [1, 2]}, str(path))
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 2}
