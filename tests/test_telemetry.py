"""repro.telemetry: spans, counters, JSONL sink, and the overhead contract."""

from __future__ import annotations

import json
import time
from collections import deque

import numpy as np
import pytest

from repro import telemetry
from repro.engine.context import EngineConfig
from repro.experiments.runner import comparison_traces, strategy_trace
from repro.telemetry import sink, spans


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts and ends with empty buffers and tracing off.

    The executor's per-process prepare memo is also cleared: earlier tests
    in the suite may have prepared the same benchmark/scale, which would
    silently skip the ``engine.prepare`` spans asserted here.
    """
    from repro.engine import executor

    executor._PREPARED.clear()
    was = telemetry.enabled()
    telemetry.disable()
    telemetry.clear()
    telemetry.reset()
    yield
    telemetry.clear()
    telemetry.reset()
    if was:
        telemetry.enable()
    else:
        telemetry.disable()


def _quiet(jobs: int = 1) -> EngineConfig:
    return EngineConfig(jobs=jobs, progress=False)


class TestSpans:
    def test_disabled_span_records_nothing(self):
        with telemetry.span("x", a=1):
            pass
        assert telemetry.drain_events() == []

    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("a") is telemetry.span("b", k=1)

    def test_enabled_span_records_event(self):
        with telemetry.tracing(True):
            with telemetry.span("forest.fit", trees=5):
                pass
        (event,) = telemetry.drain_events()
        assert event["kind"] == "span"
        assert event["name"] == "forest.fit"
        assert event["attrs"] == {"trees": 5}
        assert event["dur"] >= 0.0
        assert event["depth"] == 0

    def test_nesting_depth_recorded(self):
        with telemetry.tracing(True):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    with telemetry.span("innermost"):
                        pass
        by_name = {e["name"]: e for e in telemetry.drain_events()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["innermost"]["depth"] == 2

    def test_depth_restored_after_exception(self):
        with telemetry.tracing(True):
            with pytest.raises(RuntimeError):
                with telemetry.span("failing"):
                    raise RuntimeError("boom")
            with telemetry.span("after"):
                pass
        by_name = {e["name"]: e for e in telemetry.drain_events()}
        assert by_name["failing"]["depth"] == 0
        assert by_name["after"]["depth"] == 0

    def test_tracing_context_restores_state(self):
        assert not telemetry.enabled()
        with telemetry.tracing(True):
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_ring_buffer_drops_oldest(self, monkeypatch):
        monkeypatch.setattr(spans, "_buffer", deque(maxlen=3))
        monkeypatch.setattr(spans, "_dropped", 0)
        for i in range(5):
            telemetry.record_event({"kind": "span", "name": f"e{i}"})
        assert telemetry.dropped_events() == 2
        assert [e["name"] for e in telemetry.drain_events()] == ["e2", "e3", "e4"]

    def test_absorb_merges_foreign_events(self):
        telemetry.record_event({"kind": "span", "name": "local"})
        telemetry.absorb_events([{"kind": "span", "name": "remote"}])
        names = [e["name"] for e in telemetry.drain_events()]
        assert names == ["local", "remote"]


class TestCounters:
    def test_inc_and_snapshot(self):
        telemetry.inc("a")
        telemetry.inc("a", 4)
        telemetry.inc("b", 2)
        snap = telemetry.counters_snapshot()
        assert snap["a"] == 5 and snap["b"] == 2

    def test_gauge_keeps_latest(self):
        telemetry.gauge("g", 1.0)
        telemetry.gauge("g", 7.5)
        assert telemetry.gauges_snapshot()["g"] == 7.5

    def test_drain_resets_and_absorb_merges(self):
        telemetry.inc("x", 3)
        delta = telemetry.drain()
        assert delta == {"x": 3}
        assert telemetry.counters_snapshot() == {}
        telemetry.inc("x", 1)
        telemetry.absorb(delta)
        assert telemetry.counters_snapshot()["x"] == 4


class TestSink:
    def _synthetic_events(self):
        # parent [0, 1.0], child [0.1, 0.5] -> parent self-time 0.6
        return [
            {"kind": "span", "name": "parent", "ts": 100.0, "dur": 1.0,
             "pid": 1, "tid": 1, "depth": 0},
            {"kind": "span", "name": "child", "ts": 100.1, "dur": 0.4,
             "pid": 1, "tid": 1, "depth": 1},
        ]

    def test_phase_totals_self_time(self):
        totals = sink.phase_totals(self._synthetic_events())
        assert totals["parent"]["total"] == pytest.approx(1.0)
        assert totals["parent"]["self"] == pytest.approx(0.6)
        assert totals["child"]["self"] == pytest.approx(0.4)

    def test_self_time_is_per_thread(self):
        events = self._synthetic_events()
        events[1]["pid"] = 2  # other process: no longer nested
        totals = sink.phase_totals(events)
        assert totals["parent"]["self"] == pytest.approx(1.0)

    def test_run_id_is_content_addressed(self):
        a = sink.run_id_for_keys(["k1", "k2"])
        assert a == sink.run_id_for_keys(["k2", "k1"])  # order-independent
        assert a != sink.run_id_for_keys(["k1", "k3"])
        assert len(a) == 16

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        events = self._synthetic_events()
        sink.write_trace(
            path, events, counters={"c": 3}, gauges={"g": 1.5},
            run_id="deadbeef", dropped=1,
        )
        with open(path) as fh:
            lines = [json.loads(l) for l in fh]
        assert lines[0]["kind"] == "header"
        assert lines[0]["schema"] == sink.TRACE_SCHEMA_VERSION
        parsed = sink.read_trace(path)
        assert parsed["header"]["run_id"] == "deadbeef"
        assert parsed["header"]["dropped_events"] == 1
        assert parsed["events"] == events
        assert parsed["counters"] == {"c": 3}
        assert parsed["gauges"] == {"g": 1.5}

    def test_summarize_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink.write_trace(
            path, self._synthetic_events(), counters={"n": 2}, run_id="abc"
        )
        text = sink.summarize(sink.read_trace(path))
        assert "run abc" in text
        assert "parent" in text and "child" in text
        assert "n = 2" in text
        # Summarizing the in-memory form gives the same table.
        direct = sink.summarize(
            {"header": {"run_id": "abc"},
             "events": self._synthetic_events(),
             "counters": {"n": 2}, "gauges": {}}
        )
        assert text == direct


class TestTracedRuns:
    def test_serial_run_traces_all_phases(self, tiny_scale):
        with telemetry.tracing(True):
            strategy_trace("mvt", "pwu", tiny_scale, seed=0, engine=_quiet())
        events = telemetry.drain_events()
        names = {e["name"] for e in events}
        for expected in (
            "engine.run", "engine.job", "engine.prepare",
            "learner.select", "learner.evaluate", "learner.refit",
            "learner.record", "forest.fit", "forest.traverse",
            "costmodel.evaluate",
        ):
            assert expected in names, expected
        counts = telemetry.counters_snapshot()
        assert counts["engine.jobs.executed"] == tiny_scale.n_trials
        assert counts["learner.evaluations"] == tiny_scale.n_max

    def test_phase_totals_cover_job_wall_time(self, tiny_scale):
        with telemetry.tracing(True):
            comparison_traces(
                "mvt", ("random", "pwu"), tiny_scale, seed=0, engine=_quiet()
            )
        events = telemetry.drain_events()
        phase_total, job_wall, fraction = sink.phase_coverage(events)
        assert job_wall > 0
        # Acceptance: accounted phases sum to within 10% of traced wall.
        assert fraction > 0.9
        assert fraction < 1.05

    def test_jobs2_trace_merges_worker_events(self, tiny_scale):
        import dataclasses

        scale = dataclasses.replace(tiny_scale, n_trials=2)
        with telemetry.tracing(True):
            comparison_traces(
                "mvt", ("random", "pwu"), scale, seed=0, engine=_quiet(jobs=2)
            )
        events = telemetry.drain_events()
        jobs = [e for e in events if e["name"] == "engine.job"]
        assert len(jobs) == 4  # 2 strategies x 2 trials, none lost
        for job in jobs:
            # time.time() across processes; allow sub-ms clock slack.
            assert job["attrs"]["queue_wait"] > -1e-3
        # Worker-side spans made it back through the result channel.
        fits = [e for e in events if e["name"] == "forest.fit"]
        assert {e["pid"] for e in fits} == {e["pid"] for e in jobs}
        # Counters merged across processes: every trial evaluated n_max.
        counts = telemetry.counters_snapshot()
        assert counts["learner.evaluations"] == 4 * scale.n_max
        assert counts["engine.jobs.executed"] == 4

    def test_trace_off_buffer_stays_empty(self, tiny_scale):
        strategy_trace("mvt", "pwu", tiny_scale, seed=0, engine=_quiet())
        assert telemetry.drain_events() == []


class TestOverheadContract:
    def test_disabled_fast_path_under_two_percent(self, tiny_scale):
        # Wall time of an untraced run...
        t0 = time.perf_counter()
        strategy_trace("mvt", "pwu", tiny_scale, seed=0, engine=_quiet())
        wall = time.perf_counter() - t0
        # ...the number of span call sites the same run passes through...
        with telemetry.tracing(True):
            strategy_trace("mvt", "pwu", tiny_scale, seed=0, engine=_quiet())
        n_events = len(telemetry.drain_events())
        assert n_events > 0
        # ...and the measured per-call cost of a disabled span.
        reps = 20_000
        telemetry.disable()
        t0 = time.perf_counter()
        for _ in range(reps):
            with telemetry.span("bench.site", n=1):
                pass
        per_call = (time.perf_counter() - t0) / reps
        assert telemetry.drain_events() == []
        # Total disabled-instrumentation cost is under 2% of the run.
        assert per_call * n_events < 0.02 * wall, (
            f"disabled spans cost {per_call * n_events:.6f}s "
            f"({n_events} sites) on a {wall:.3f}s run"
        )
