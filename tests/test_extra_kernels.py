"""Tests for the six non-paper SPAPT kernels."""

import numpy as np
import pytest

from repro.kernels import (
    EXTRA_KERNEL_NAMES,
    SPAPT_KERNEL_NAMES,
    make_extra_kernel,
)
from repro.workloads import get_benchmark


class TestInventory:
    def test_six_extras_complete_the_suite_of_18(self):
        assert len(EXTRA_KERNEL_NAMES) == 6
        assert len(set(EXTRA_KERNEL_NAMES) | set(SPAPT_KERNEL_NAMES)) == 18

    def test_extras_not_in_paper_set(self):
        assert set(EXTRA_KERNEL_NAMES).isdisjoint(SPAPT_KERNEL_NAMES)

    def test_unknown_extra(self):
        with pytest.raises(KeyError, match="extra"):
            make_extra_kernel("adi")


@pytest.mark.parametrize("name", EXTRA_KERNEL_NAMES)
class TestEveryExtraKernel:
    def test_registered_and_functional(self, name, rng):
        bench = get_benchmark(name)
        X = bench.space.sample_encoded(rng, 100)
        t = bench.true_times_encoded(X)
        assert np.isfinite(t).all() and (t > 0).all()
        assert t.max() / t.min() > 1.5

    def test_measurement_path(self, name, rng):
        bench = get_benchmark(name)
        X = bench.space.sample_encoded(rng, 5)
        obs = bench.measure_encoded(X, rng)
        assert (obs > 0).all()


class TestSeidelSpecifics:
    def test_vectorization_flag_never_speeds_up_seidel(self, rng):
        """Gauss-Seidel's loop-carried dependences defeat SIMD: forcing the
        flag must not make any configuration faster."""
        bench = get_benchmark("seidel")
        X = bench.space.sample_encoded(rng, 60)
        vec_col = list(bench.space.names).index("VEC")
        X_off, X_on = X.copy(), X.copy()
        X_off[:, vec_col] = 0.0
        X_on[:, vec_col] = 1.0
        t_off = bench.true_times_encoded(X_off)
        t_on = bench.true_times_encoded(X_on)
        assert (t_on >= t_off - 1e-12).all()

    def test_stencil3d_is_memory_heavy(self, rng):
        bench = get_benchmark("stencil3d")
        d = bench.descriptor
        assert d.accesses > d.flops  # bandwidth-bound by construction
