"""Tests for the loop-nest cost model (the SPAPT measurement substrate)."""

import numpy as np
import pytest

from repro.costmodel import ArrayRef, KernelCostModel, LoopNestSpec
from repro.costmodel.quirks import InteractionQuirk
from repro.costmodel.transform import effective_tile_extents, transform_effects
from repro.machine import PLATFORM_A


@pytest.fixture
def simple_nest() -> LoopNestSpec:
    return LoopNestSpec(
        name="toy",
        loop_extents=(1024, 1024),
        arrays=(ArrayRef("A", (0, 1)), ArrayRef("x", (1,), weight=0.5)),
        flops=1e8,
        accesses=2e8,
    )


class TestLoopNestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tiled loop"):
            LoopNestSpec("t", (), (), 1.0, 1.0)
        with pytest.raises(ValueError, match="out of range"):
            LoopNestSpec(
                "t", (8,), (ArrayRef("A", (1,)),), 1.0, 1.0
            )
        with pytest.raises(ValueError, match="reuse_potential"):
            LoopNestSpec("t", (8,), (ArrayRef("A", (0,)),), 1.0, 1.0, reuse_potential=2.0)
        with pytest.raises(ValueError, match="vector_stride_dim"):
            LoopNestSpec(
                "t", (8,), (ArrayRef("A", (0,)),), 1.0, 1.0, vector_stride_dim=3
            )

    def test_working_set_is_product_of_tile_dims(self, simple_nest):
        T = np.array([[32.0, 32.0]])
        ws = simple_nest.working_set_bytes(T)
        # A: 8B * 32 * 32 ; x: 8B * 32
        assert ws[0] == pytest.approx(8 * 32 * 32 + 8 * 32)

    def test_working_set_shape_check(self, simple_nest):
        with pytest.raises(ValueError, match="tile matrix"):
            simple_nest.working_set_bytes(np.ones((2, 3)))


class TestEffectiveTiles:
    def test_tile_one_means_untiled(self):
        eff = effective_tile_extents(np.array([[1.0, 64.0]]), (1024, 512))
        assert eff.tolist() == [[1024.0, 64.0]]

    def test_tiles_clamp_to_extent(self):
        eff = effective_tile_extents(np.array([[2048.0]]), (100,))
        assert eff[0, 0] == 100.0

    def test_rejects_tiles_below_one(self):
        with pytest.raises(ValueError, match=">= 1"):
            effective_tile_extents(np.array([[0.5]]), (100,))


class TestTransformEffects:
    def _effects(self, **overrides):
        kw = dict(
            tile_eff=np.array([[64.0, 64.0]]),
            unroll=np.array([[1.0]]),
            regtile=np.array([[1.0]]),
            scalar_replace=np.array([0.0]),
            vectorize=np.array([0.0]),
            loop_extents=(1024, 1024),
            base_registers=6.0,
            reuse_potential=0.4,
            vector_stride_dim=0,
        )
        kw.update(overrides)
        return transform_effects(**kw)

    def test_unrolling_reduces_compute_factor(self):
        base = self._effects(unroll=np.array([[1.0]]))
        unrolled = self._effects(unroll=np.array([[8.0]]))
        assert unrolled.compute_factor[0] < base.compute_factor[0]

    def test_extreme_unroll_spills(self):
        mild = self._effects(unroll=np.array([[4.0]]))
        extreme = self._effects(unroll=np.array([[31.0, 31.0, 31.0]]).reshape(1, 3))
        assert extreme.compute_factor[0] > mild.compute_factor[0]
        assert extreme.register_pressure[0] > 16.0

    def test_spill_penalty_capped(self):
        fx = self._effects(unroll=np.full((1, 6), 31.0))
        # compute_factor = (1+overhead) * spill * misfire / simd; spill <= 8
        assert fx.compute_factor[0] < 8.0 * 1.5

    def test_vectorization_helps_wide_tiles(self):
        off = self._effects(vectorize=np.array([0.0]))
        on = self._effects(vectorize=np.array([1.0]))
        assert on.compute_factor[0] < off.compute_factor[0]

    def test_vectorization_misfires_on_narrow_innermost(self):
        off = self._effects(
            tile_eff=np.array([[4.0, 64.0]]), vectorize=np.array([0.0])
        )
        on = self._effects(
            tile_eff=np.array([[4.0, 64.0]]), vectorize=np.array([1.0])
        )
        assert on.compute_factor[0] > off.compute_factor[0]

    def test_scalar_replacement_cuts_accesses(self):
        off = self._effects(scalar_replace=np.array([0.0]))
        on = self._effects(scalar_replace=np.array([1.0]))
        assert on.access_factor[0] < off.access_factor[0]

    def test_register_tiling_cuts_accesses(self):
        off = self._effects(regtile=np.array([[1.0]]))
        on = self._effects(regtile=np.array([[8.0]]))
        assert on.access_factor[0] < off.access_factor[0]

    def test_access_factor_floor(self):
        fx = self._effects(
            regtile=np.array([[32.0, 32.0]]).reshape(1, 2),
            scalar_replace=np.array([1.0]),
        )
        assert fx.access_factor[0] >= 1.0 - 0.4 - 1e-12

    def test_nest_groups_sum_not_product(self):
        grouped = self._effects(nest_groups=((0,), (1,)))
        fused = self._effects(nest_groups=((0, 1),))
        assert grouped.startup_cycles[0] < fused.startup_cycles[0]

    def test_rejects_unroll_below_one(self):
        with pytest.raises(ValueError, match=">= 1"):
            self._effects(unroll=np.array([[0.5]]))


class TestInteractionQuirk:
    def _quirk(self, key="k", amp=0.2):
        return InteractionQuirk(
            key=key,
            n_features=5,
            feature_low=np.zeros(5),
            feature_high=np.ones(5),
            amplitude=amp,
        )

    def test_bounded(self, rng):
        q = self._quirk()
        f = q.factor(rng.random((500, 5)))
        assert (f >= 0.8 - 1e-9).all() and (f <= 1.2 + 1e-9).all()

    def test_deterministic_per_key(self, rng):
        X = rng.random((50, 5))
        assert np.array_equal(self._quirk("a").factor(X), self._quirk("a").factor(X))

    def test_different_keys_differ(self, rng):
        X = rng.random((50, 5))
        assert not np.array_equal(
            self._quirk("atax").factor(X), self._quirk("mm").factor(X)
        )

    def test_zero_amplitude_is_identity(self, rng):
        q = self._quirk(amp=0.0)
        assert np.allclose(q.factor(rng.random((20, 5))), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="two features"):
            InteractionQuirk("k", 1, np.zeros(1), np.ones(1))
        with pytest.raises(ValueError, match="amplitude"):
            self._quirk(amp=1.5)


class TestKernelCostModel:
    @pytest.fixture
    def model(self, simple_nest) -> KernelCostModel:
        return KernelCostModel(
            nest=simple_nest, machine=PLATFORM_A, n_tile=2, n_unroll=1, n_regtile=1
        )

    def _X(self, tile1, tile2, unroll, regtile, sr, vec):
        return np.array([[tile1, tile2, unroll, regtile, sr, vec]], dtype=float)

    def test_times_positive_finite(self, model, rng):
        X = np.column_stack(
            [
                rng.choice([1, 16, 64, 512], 100),
                rng.choice([1, 16, 64, 512], 100),
                rng.integers(1, 32, 100),
                rng.choice([1, 8, 32], 100),
                rng.integers(0, 2, 100),
                rng.integers(0, 2, 100),
            ]
        ).astype(float)
        t = model.true_times(X)
        assert np.isfinite(t).all() and (t > 0).all()

    def test_deterministic(self, model):
        X = self._X(64, 64, 4, 8, 1, 1)
        assert model.true_times(X)[0] == model.true_times(X)[0]

    def test_cache_blocking_beats_untiled(self, model):
        # 32x32 tiles keep the working set in L1; untiled streams from memory.
        fast = model.true_times(self._X(32, 32, 1, 1, 0, 0))[0]
        slow = model.true_times(self._X(1, 1, 1, 1, 0, 0))[0]
        assert fast < slow

    def test_column_count_checked(self, model):
        with pytest.raises(ValueError, match="columns"):
            model.true_times(np.ones((1, 3)))

    def test_parameter_count_consistency(self, simple_nest):
        with pytest.raises(ValueError, match="tile parameters"):
            KernelCostModel(
                nest=simple_nest, machine=PLATFORM_A, n_tile=3, n_unroll=1, n_regtile=0
            )

    def test_time_scale_multiplies(self, simple_nest):
        m1 = KernelCostModel(simple_nest, PLATFORM_A, 2, 1, 1, time_scale=1.0)
        m2 = KernelCostModel(simple_nest, PLATFORM_A, 2, 1, 1, time_scale=2.0)
        X = self._X(64, 64, 2, 8, 0, 1)
        assert m2.true_times(X)[0] == pytest.approx(2.0 * m1.true_times(X)[0])
