"""The tuning service: protocol, routing, sessions, resume, and HTTP e2e.

Three layers under test, cheapest first:

- :mod:`repro.service.protocol` — envelope stamping and SessionSpec
  validation, no I/O at all;
- :class:`repro.service.app.ServiceApp` — the full wire protocol driven
  with no sockets (method/path/body in, status/headers/body out);
- :class:`repro.service.daemon.TuningServer` + the urllib client — real
  HTTP on an ephemeral loopback port, including the acceptance-criteria
  e2e: a ≥30-round client-evaluated session whose model is bit-identical
  to the offline reference, surviving a daemon "kill"/restart mid-way.
"""

import json
import threading

import numpy as np
import pytest

from repro._version import __version__
from repro.service.app import ServiceApp
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_SCHEMA,
    ProtocolError,
    SessionSpec,
    envelope,
)
from repro.service.registry import SessionRegistry
from repro.service.session import Session, measure_round, offline_reference

#: A session small enough for fast tests but real enough to fit forests.
SPEC_FIELDS = dict(
    benchmark="atax",
    strategy="pwu",
    seed=5,
    n_init=5,
    n_max=18,
    pool_size=200,
    test_size=150,
)


def make_spec(**overrides):
    fields = dict(SPEC_FIELDS)
    fields.update(overrides)
    return SessionSpec.from_payload(fields)


def model_blob(learner):
    from repro.surrogate import surrogate_bytes

    return surrogate_bytes(learner.model)


class AppDriver:
    """Socketless harness: JSON in/out through ServiceApp.handle."""

    def __init__(self, root):
        self.app = ServiceApp(SessionRegistry(root))

    def call(self, method, path, payload=None):
        body = json.dumps(payload).encode() if payload is not None else b""
        status, headers, raw = self.app.handle(method, path, body)
        if headers.get("Content-Type") == "application/json":
            return status, json.loads(raw)
        return status, raw

    def drive(self, spec_fields, rounds=None):
        """Create a session and run it (or ``rounds`` of it); returns id."""
        status, data = self.call("POST", "/v1/sessions", spec_fields)
        assert status == 201, data
        sid = data["session"]["id"]
        self.continue_session(sid, spec_fields, rounds)
        return sid

    def continue_session(self, sid, spec_fields, rounds=None):
        spec = SessionSpec.from_payload(dict(spec_fields))
        done = 0
        while rounds is None or done < rounds:
            status, data = self.call("GET", f"/v1/sessions/{sid}")
            if data["session"]["state"] != "open":
                break
            status, data = self.call("POST", f"/v1/sessions/{sid}/suggest")
            assert status == 200, data
            sug = data["suggestion"]
            y = measure_round(spec, np.asarray(sug["x"]), sug["round"])
            status, data = self.call(
                "POST",
                f"/v1/sessions/{sid}/report",
                {"indices": sug["indices"], "y": [float(v) for v in y]},
            )
            assert status == 200, data
            done += 1


class TestProtocol:
    def test_envelope_stamps_provenance(self):
        env = envelope({"x": 1})
        assert env["schema"] == SERVICE_SCHEMA
        assert env["protocol"] == PROTOCOL_VERSION
        assert env["version"] == __version__
        assert env["x"] == 1

    def test_every_response_carries_the_version(self, tmp_path):
        driver = AppDriver(tmp_path)
        for method, path in [
            ("GET", "/v1/healthz"),
            ("GET", "/v1/strategies"),
            ("GET", "/v1/sessions"),
            ("GET", "/v1/sessions/snope"),  # an error envelope
        ]:
            _, data = driver.call(method, path)
            assert data["schema"] == SERVICE_SCHEMA
            assert data["protocol"] == PROTOCOL_VERSION
            assert data["version"] == __version__

    def test_spec_roundtrip_and_hash(self):
        spec = make_spec()
        again = SessionSpec.from_payload(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        assert make_spec(seed=6).spec_hash() != spec.spec_hash()

    def test_spec_scale_overrides(self):
        scale = make_spec(n_estimators=9).to_scale()
        assert (scale.n_max, scale.n_init, scale.n_estimators) == (18, 5, 9)
        assert scale.n_trials == 1

    @pytest.mark.parametrize(
        "payload, code",
        [
            ({}, "missing_field"),
            ({"benchmark": "atax", "bogus": 1}, "unknown_field"),
            ({"benchmark": "atax", "mode": "psychic"}, "bad_mode"),
            ({"benchmark": "atax", "scale": "galactic"}, "bad_scale"),
            ({"benchmark": "atax", "seed": "six"}, "bad_seed"),
            ({"benchmark": "nope"}, "unknown_workload"),
            ({"benchmark": "surrogate:/nonexistent/x.npz"}, "unknown_workload"),
            ({"benchmark": "atax", "strategy": "nope"}, "unknown_strategy"),
            ({"benchmark": "atax", "n_max": 9000}, "bad_spec"),
            ("not a dict", "bad_request"),
        ],
    )
    def test_spec_validation_errors(self, payload, code):
        with pytest.raises(ProtocolError) as err:
            SessionSpec.from_payload(payload)
        assert err.value.status == 400
        assert err.value.code == code


class TestAppRouting:
    def test_healthz_and_strategies(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call("GET", "/v1/healthz")
        assert status == 200 and data["status"] == "ok"
        status, data = driver.call("GET", "/v1/strategies")
        assert "pwu" in data["strategies"]
        assert "atax" in data["benchmarks"]
        assert "smoke" in data["scales"]

    def test_unknown_route_and_method(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call("GET", "/v1/teapot")
        assert status == 404 and data["error"]["code"] == "unknown_route"
        status, data = driver.call("POST", "/v1/healthz")
        assert status == 405 and data["error"]["code"] == "method_not_allowed"

    def test_bad_json_body(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, _, raw = driver.app.handle("POST", "/v1/sessions", b"{nope")
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "bad_json"

    def test_unknown_session_404(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call("GET", "/v1/sessions/s000000-ffffffffff")
        assert status == 404 and data["error"]["code"] == "unknown_session"

    def test_model_before_cold_report_409(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        sid = data["session"]["id"]
        status, data = driver.call("GET", f"/v1/sessions/{sid}/model")
        assert status == 409 and data["error"]["code"] == "no_model"

    def test_report_without_suggest_409(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        sid = data["session"]["id"]
        status, data = driver.call(
            "POST", f"/v1/sessions/{sid}/report", {"indices": [0], "y": [1.0]}
        )
        assert status == 409
        assert data["error"]["code"] == "no_pending_suggestion"

    def test_stale_report_409_keeps_suggestion_alive(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        sid = data["session"]["id"]
        _, data = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        sug = data["suggestion"]
        wrong = [i + 1 for i in sug["indices"]]
        status, data = driver.call(
            "POST",
            f"/v1/sessions/{sid}/report",
            {"indices": wrong, "y": [0.0] * len(wrong)},
        )
        assert status == 409 and data["error"]["code"] == "stale_report"
        _, data = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        assert data["suggestion"]["indices"] == sug["indices"]

    def test_suggest_is_idempotent_over_the_wire(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        sid = data["session"]["id"]
        _, first = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        _, again = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        assert first["suggestion"] == again["suggestion"]

    def test_suggest_after_completion_409(self, tmp_path):
        driver = AppDriver(tmp_path)
        sid = driver.drive(SPEC_FIELDS)
        status, data = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        assert status == 409 and data["error"]["code"] == "budget_exhausted"

    def test_suggestion_payload_shape(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        sid = data["session"]["id"]
        _, data = driver.call("POST", f"/v1/sessions/{sid}/suggest")
        sug = data["suggestion"]
        assert sug["round"] == 0
        assert len(sug["indices"]) == SPEC_FIELDS["n_init"]
        assert len(sug["configs"]) == len(sug["indices"])
        assert all(isinstance(c, dict) for c in sug["configs"])
        assert len(sug["x"]) == len(sug["indices"])

    def test_session_listing(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, a = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        _, b = driver.call("POST", "/v1/sessions", dict(SPEC_FIELDS, seed=9))
        _, data = driver.call("GET", "/v1/sessions")
        ids = [s["id"] for s in data["sessions"]]
        assert ids == sorted(ids)
        assert a["session"]["id"] in ids and b["session"]["id"] in ids


class TestSurrogateSessions:
    def test_strategies_route_lists_surrogates(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call("GET", "/v1/strategies")
        for name in ("forest", "gp", "select", "stack"):
            assert name in data["surrogates"]

    def test_unknown_surrogate_rejected_with_400(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call(
            "POST", "/v1/sessions", dict(SPEC_FIELDS, surrogate="forrest")
        )
        assert status == 400
        assert data["error"]["code"] == "unknown_surrogate"
        assert "forest" in data["error"]["message"]

    def test_transfer_without_source_rejected_at_creation(self, tmp_path):
        # "transfer" needs a source model the wire spec cannot carry; it
        # must fail at session creation, not mid-session.
        driver = AppDriver(tmp_path)
        status, data = driver.call(
            "POST", "/v1/sessions", dict(SPEC_FIELDS, surrogate="transfer")
        )
        assert status == 400
        assert data["error"]["code"] == "bad_spec"

    def test_surrogate_participates_in_spec_hash(self):
        assert make_spec(surrogate="gp").spec_hash() != make_spec().spec_hash()

    def test_snapshot_names_the_surrogate(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, data = driver.call(
            "POST", "/v1/sessions", dict(SPEC_FIELDS, surrogate="gp")
        )
        assert data["session"]["surrogate"] == "gp"

    def test_model_header_and_deserialization(self, tmp_path):
        import io

        from repro.surrogate import GPSurrogate, load_surrogate

        driver = AppDriver(tmp_path)
        sid = driver.drive(dict(SPEC_FIELDS, surrogate="gp"), rounds=1)
        status, headers, raw = driver.app.handle(
            "GET", f"/v1/sessions/{sid}/model"
        )
        assert status == 200
        assert headers["X-Repro-Surrogate"] == "gp"
        assert isinstance(load_surrogate(io.BytesIO(raw)), GPSurrogate)

    @pytest.mark.parametrize("surrogate", ["gp", "select"])
    def test_served_session_matches_offline_reference(
        self, tmp_path, surrogate
    ):
        driver = AppDriver(tmp_path)
        sid = driver.drive(dict(SPEC_FIELDS, surrogate=surrogate))
        status, blob = driver.call("GET", f"/v1/sessions/{sid}/model")
        assert status == 200
        assert blob == model_blob(
            offline_reference(make_spec(surrogate=surrogate))
        )


class TestSessionDeterminismAndResume:
    def test_served_session_matches_offline_reference(self, tmp_path):
        driver = AppDriver(tmp_path)
        sid = driver.drive(SPEC_FIELDS)
        status, blob = driver.call("GET", f"/v1/sessions/{sid}/model")
        assert status == 200
        assert blob == model_blob(offline_reference(make_spec()))

    def test_measure_round_is_one_fused_batch(self):
        """The service measures each suggested batch through a single
        :meth:`Benchmark.evaluate_batch` call (DESIGN.md §2h) — one fused
        cost-model pass per round, not one per configuration — and the
        round-derived oracle keeps repeat measurements bit-identical."""
        from repro.telemetry import counters
        from repro.workloads import get_benchmark

        spec = make_spec()
        benchmark = get_benchmark(spec.benchmark)
        X = benchmark.space.sample_encoded(np.random.default_rng(0), 6)
        before = counters.value("costmodel.batches")
        y = measure_round(spec, X, 0)
        assert counters.value("costmodel.batches") == before + 1
        assert y.shape == (6,)
        np.testing.assert_array_equal(y, measure_round(spec, X, 0))

    def test_restart_resumes_open_session_and_stays_bit_identical(
        self, tmp_path
    ):
        driver = AppDriver(tmp_path)
        sid = driver.drive(SPEC_FIELDS, rounds=4)
        _, data = driver.call("GET", f"/v1/sessions/{sid}")
        assert data["session"]["state"] == "open"
        assert data["session"]["rounds"] == 4
        # "Restart the daemon": a fresh registry over the same data dir.
        driver2 = AppDriver(tmp_path)
        _, data = driver2.call("GET", f"/v1/sessions/{sid}")
        assert data["session"]["rounds"] == 4
        driver2.continue_session(sid, SPEC_FIELDS)
        _, blob = driver2.call("GET", f"/v1/sessions/{sid}/model")
        assert blob == model_blob(offline_reference(make_spec()))

    def test_crash_after_journal_before_observe_replays_the_round(
        self, tmp_path
    ):
        from repro.engine.store import append_jsonl

        spec = make_spec()
        registry = SessionRegistry(tmp_path)
        session = registry.create(spec)
        suggestion = session.suggest()
        y = measure_round(spec, np.asarray(suggestion["x"]), 0)
        # Simulate a crash between the journal fsync and observe(): the
        # line is on disk but the learner never saw it.
        append_jsonl(
            session.dir / "journal.jsonl",
            {
                "round": 0,
                "n": None,
                "indices": suggestion["indices"],
                "y": [float(v) for v in y],
            },
        )
        resumed = Session.load(session.dir)
        assert resumed.rounds == 1
        assert resumed.learner.n_labeled == len(suggestion["indices"])

    def test_diverging_journal_is_refused(self, tmp_path):
        from repro.engine.store import append_jsonl

        spec = make_spec()
        registry = SessionRegistry(tmp_path)
        session = registry.create(spec)
        suggestion = session.suggest()
        wrong = [i + 1 for i in suggestion["indices"]]
        append_jsonl(
            session.dir / "journal.jsonl",
            {"round": 0, "n": None, "indices": wrong, "y": [0.0] * len(wrong)},
        )
        with pytest.raises(RuntimeError, match="replay diverged"):
            Session.load(session.dir)

    def test_registry_keeps_corrupt_session_visible_as_failed(self, tmp_path):
        driver = AppDriver(tmp_path)
        sid = driver.drive(SPEC_FIELDS, rounds=2)
        journal = tmp_path / "sessions" / sid / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"{broken!}\n" + b"".join(lines[1:]))
        driver2 = AppDriver(tmp_path)
        status, data = driver2.call("GET", f"/v1/sessions/{sid}")
        assert status == 410
        assert data["error"]["code"] == "session_unrecoverable"
        _, data = driver2.call("GET", "/v1/sessions")
        states = {s["id"]: s["state"] for s in data["sessions"]}
        assert states[sid] == "failed"

    def test_serial_never_recycled_after_manifest_loss(self, tmp_path):
        driver = AppDriver(tmp_path)
        _, a = driver.call("POST", "/v1/sessions", SPEC_FIELDS)
        # Crash before the manifest survived: the sessions/ scan rules.
        (tmp_path / "manifest.json").unlink()
        driver2 = AppDriver(tmp_path)
        _, b = driver2.call("POST", "/v1/sessions", SPEC_FIELDS)
        assert b["session"]["id"] > a["session"]["id"]

    def test_server_mode_session_runs_to_completion(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        session = registry.create(make_spec(mode="server", n_max=12))
        thread = registry._threads[session.id]
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert session.state == "completed"
        assert session.snapshot()["rounds"] == session.rounds > 0

    def test_server_mode_resumes_after_restart(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        session = registry.create(make_spec(mode="server", n_max=12))
        registry._threads[session.id].join(timeout=120)
        registry.shutdown()
        # Reboot: the completed session must load, and its model must
        # equal the offline reference (server mode uses the same
        # per-round oracle derivation).
        registry2 = SessionRegistry(tmp_path)
        resumed = registry2.get(session.id)
        assert resumed.state == "completed"
        assert resumed.model_bytes() == model_blob(
            offline_reference(make_spec(mode="server", n_max=12))
        )


class TestConcurrentSessions:
    def test_two_sessions_drive_concurrently_in_sibling_dirs(self, tmp_path):
        driver = AppDriver(tmp_path)
        specs = [dict(SPEC_FIELDS, seed=21), dict(SPEC_FIELDS, seed=22)]
        sids, errors = [None, None], []

        def work(i):
            try:
                sids[i] = driver.drive(specs[i])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors
        for sid, fields in zip(sids, specs):
            _, blob = driver.call("GET", f"/v1/sessions/{sid}/model")
            expected = model_blob(
                offline_reference(SessionSpec.from_payload(dict(fields)))
            )
            assert blob == expected

    def test_concurrent_append_and_compact_in_sibling_dirs(self, tmp_path):
        from repro.engine.store import append_jsonl, iter_jsonl, replace_jsonl

        errors = []

        def churn(name):
            try:
                path = tmp_path / name / "journal.jsonl"
                path.parent.mkdir()
                for i in range(40):
                    append_jsonl(path, {"i": i, "who": name})
                    if i % 10 == 9:
                        kept = [
                            p
                            for _, _, p in iter_jsonl(path)
                            if p is not None and p["i"] >= i - 5
                        ]
                        replace_jsonl(path, kept)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        for name in ("a", "b"):
            rows = [
                p
                for _, _, p in iter_jsonl(tmp_path / name / "journal.jsonl")
                if p is not None
            ]
            assert rows, "journal lost all rows"
            assert all(r["who"] == name for r in rows)
            assert rows[-1]["i"] == 39


@pytest.mark.slow
class TestHTTPEndToEnd:
    """Real sockets: the acceptance-criteria session over loopback HTTP."""

    E2E_FIELDS = dict(
        benchmark="atax",
        strategy="pwu",
        seed=17,
        n_init=5,
        n_max=36,  # cold round + 31 step rounds = 32 suggest/report rounds
        pool_size=200,
        test_size=150,
    )

    def _serve(self, tmp_path):
        from repro.service import ServiceConfig, TuningServer

        return TuningServer(
            ServiceConfig(port=0, data_dir=str(tmp_path))
        ).start()

    def test_full_session_with_kill_and_restart(self, tmp_path):
        from repro.service import Client

        spec = SessionSpec.from_payload(dict(self.E2E_FIELDS))
        server = self._serve(tmp_path)
        try:
            client = Client(server.url)
            assert client.healthz()["status"] == "ok"
            session = client.create_session(**self.E2E_FIELDS)
            sid = session["id"]
            rounds = 0
            # Drive 10 rounds, then kill the daemon mid-session.
            for _ in range(10):
                sug = client.suggest(sid)
                y = measure_round(spec, np.asarray(sug["x"]), sug["round"])
                snap = client.report(sid, sug["indices"], y)
                rounds += 1
            assert snap["state"] == "open"
        finally:
            server.stop()

        # Restart over the same data dir: journaled rounds must survive.
        server = self._serve(tmp_path)
        try:
            client = Client(server.url)
            snap = client.status(sid)
            assert snap["rounds"] == rounds
            assert snap["state"] == "open"
            while snap["state"] == "open":
                sug = client.suggest(sid)
                y = measure_round(spec, np.asarray(sug["x"]), sug["round"])
                snap = client.report(sid, sug["indices"], y)
                rounds += 1
            assert rounds >= 30
            assert snap["state"] == "completed"
            # The model fetched over HTTP equals the offline reference,
            # byte for byte, despite the kill/restart in the middle.
            assert client.model_bytes(sid) == model_blob(
                offline_reference(spec)
            )
            model = client.model(sid)
            reference = offline_reference(spec).model
            probe = np.asarray(
                [sug["x"][0]], dtype=np.float64
            )  # any encoded row
            np.testing.assert_array_equal(
                model.predict(probe), reference.predict(probe)
            )
        finally:
            server.stop()

    def test_client_rejects_non_service_envelope(self, tmp_path):
        from repro.service import Client, ServiceError

        server = self._serve(tmp_path)
        try:
            client = Client(server.url)
            client._check_envelope(200, {"schema": "someone.else", "protocol": 1})
        except ServiceError as err:
            assert err.code == "bad_envelope"
        else:  # pragma: no cover - the check must have raised
            raise AssertionError("bad envelope accepted")
        finally:
            server.stop()

    def test_run_session_convenience_loop(self, tmp_path):
        from repro.service import Client

        fields = dict(self.E2E_FIELDS, n_max=12, seed=3)
        spec = SessionSpec.from_payload(dict(fields))
        server = self._serve(tmp_path)
        try:
            client = Client(server.url)
            final = client.run_session(
                lambda sug: measure_round(
                    spec, np.asarray(sug["x"]), sug["round"]
                ),
                **fields,
            )
            assert final["state"] == "completed"
            assert final["n_labeled"] == 12
        finally:
            server.stop()


class TestDistilledWorkloadSessions:
    """Distilled envelopes as session workloads (DESIGN.md §2j)."""

    @pytest.fixture(scope="class")
    def envelope_path(self, tmp_path_factory):
        from repro.workloads import distill_workload, get_benchmark, save_distilled

        path = tmp_path_factory.mktemp("svc-distill") / "atax.npz"
        save_distilled(
            distill_workload(
                get_benchmark("atax"), budget=120, seed=2, n_estimators=4
            ),
            path,
        )
        return path

    def test_spec_accepts_and_hashes_the_file_name(self, envelope_path):
        spec = make_spec(benchmark=f"surrogate:{envelope_path}")
        assert spec.benchmark == f"surrogate:{envelope_path}"
        assert spec.spec_hash() != make_spec().spec_hash()

    def test_session_runs_against_the_envelope(self, tmp_path, envelope_path):
        driver = AppDriver(tmp_path)
        fields = dict(SPEC_FIELDS, benchmark=f"surrogate:{envelope_path}")
        sid = driver.drive(fields, rounds=2)
        status, data = driver.call("GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert data["session"]["benchmark"] == f"surrogate:{envelope_path}"
        assert data["session"]["n_labeled"] > 0

    def test_unreadable_envelope_is_a_400_not_a_500(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"not an archive")
        driver = AppDriver(tmp_path)
        status, data = driver.call(
            "POST", "/v1/sessions", {"benchmark": f"surrogate:{junk}"}
        )
        assert status == 400
        assert data["error"]["code"] == "unknown_workload"
        assert "cannot load" in data["error"]["message"]

    def test_unknown_name_includes_did_you_mean(self, tmp_path):
        driver = AppDriver(tmp_path)
        status, data = driver.call("POST", "/v1/sessions", {"benchmark": "attax"})
        assert status == 400
        assert data["error"]["code"] == "unknown_workload"
        assert "did you mean" in data["error"]["message"]
