"""Tests for the evaluation metrics (Equations 2 and 3, Fig. 7 speedup)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    cost_to_reach,
    cumulative_cost,
    rmse,
    speedup_at_level,
    top_alpha_rmse,
)


class TestRMSE:
    def test_zero_for_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestTopAlphaRMSE:
    def test_uses_floor_n_alpha_best_samples(self):
        """Equation 2: m = ⌊nα⌋ samples with the shortest observed times."""
        y_true = np.array([5.0, 1.0, 3.0, 2.0, 4.0] * 2)  # n=10
        y_pred = y_true + 1.0
        # alpha=0.25 -> m=2: the two fastest samples (1.0 and 1.0 here twice)
        v = top_alpha_rmse(y_true, y_pred, alpha=0.25)
        assert v == pytest.approx(1.0)

    def test_error_outside_top_slice_ignored(self):
        y_true = np.arange(1.0, 11.0)  # fastest two: 1, 2
        y_pred = y_true.copy()
        y_pred[-1] += 1000.0  # huge error on the slowest sample
        assert top_alpha_rmse(y_true, y_pred, alpha=0.2) == 0.0

    def test_error_inside_top_slice_counts(self):
        y_true = np.arange(1.0, 11.0)
        y_pred = y_true.copy()
        y_pred[0] += 3.0
        assert top_alpha_rmse(y_true, y_pred, alpha=0.2) == pytest.approx(
            np.sqrt(9.0 / 2)
        )

    def test_alpha_one_is_plain_rmse(self, rng):
        y_true = rng.random(50)
        y_pred = rng.random(50)
        assert top_alpha_rmse(y_true, y_pred, 1.0) == pytest.approx(
            rmse(y_true, y_pred)
        )

    def test_too_small_test_set_rejected(self):
        with pytest.raises(ValueError, match="top"):
            top_alpha_rmse(np.ones(10), np.ones(10), alpha=0.01)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            top_alpha_rmse(np.ones(10), np.ones(10), alpha=0.0)


class TestCumulativeCost:
    def test_is_sum(self):
        assert cumulative_cost(np.array([1.0, 2.0, 3.5])) == 6.5

    def test_empty_is_zero(self):
        assert cumulative_cost(np.array([])) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cumulative_cost(np.array([-1.0]))


class TestCostToReach:
    def test_first_crossing(self):
        costs = np.array([1.0, 2.0, 3.0, 4.0])
        errors = np.array([0.9, 0.5, 0.6, 0.1])
        assert cost_to_reach(costs, errors, 0.5) == 2.0

    def test_never_reached_is_nan(self):
        costs = np.array([1.0, 2.0])
        errors = np.array([0.9, 0.8])
        assert np.isnan(cost_to_reach(costs, errors, 0.1))

    def test_decreasing_costs_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            cost_to_reach(np.array([2.0, 1.0]), np.array([1.0, 0.5]), 0.6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cost_to_reach(np.array([]), np.array([]), 0.5)


class TestSpeedupAtLevel:
    def test_explicit_level(self):
        cb = np.array([10.0, 20.0, 30.0])
        eb = np.array([0.9, 0.5, 0.2])
        co = np.array([5.0, 10.0, 15.0])
        eo = np.array([0.9, 0.4, 0.2])
        sp, level = speedup_at_level(cb, eb, co, eo, level=0.5)
        assert level == 0.5
        assert sp == pytest.approx(20.0 / 10.0)

    def test_auto_level_is_joint_reachable(self):
        cb = np.array([10.0, 20.0])
        eb = np.array([0.6, 0.3])
        co = np.array([4.0, 8.0])
        eo = np.array([0.5, 0.2])
        sp, level = speedup_at_level(cb, eb, co, eo)
        # level = max(0.3, 0.2) * 1.05 = 0.315 → baseline reaches at 20, ours at 8
        assert level == pytest.approx(0.315)
        assert sp == pytest.approx(20.0 / 8.0)

    def test_unreachable_level_gives_nan(self):
        cb = np.array([10.0])
        eb = np.array([0.9])
        co = np.array([5.0])
        eo = np.array([0.2])
        sp, _ = speedup_at_level(cb, eb, co, eo, level=0.1)
        assert np.isnan(sp)


@given(
    data=st.lists(
        st.tuples(st.floats(0.01, 100.0), st.floats(0.0, 10.0)),
        min_size=100,
        max_size=300,
    ),
    alpha=st.sampled_from([0.01, 0.05, 0.1, 0.5]),
)
@settings(max_examples=25, deadline=None)
def test_property_top_alpha_rmse_bounded_by_worst_case(data, alpha):
    """RMSE over the top slice never exceeds the max absolute error."""
    y_true = np.array([d[0] for d in data])
    y_pred = y_true + np.array([d[1] for d in data])
    v = top_alpha_rmse(y_true, y_pred, alpha)
    assert v <= np.abs(y_pred - y_true).max() + 1e-9
    assert v >= 0.0
