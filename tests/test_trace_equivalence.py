"""Trace-equivalence: the fast surrogate path is bit-identical to the reference.

The presorted/C tree grower, the packed-forest traversal, the pool-score
cache, and the learner's selection-stat reuse are all pure optimisations:
they must produce the *same bits* as the pre-optimisation reference —
same splits, same RNG consumption, same predictions, same selected pool
indices over a full ``ActiveLearner.run``.  These tests pin that, for both
the C kernel and the pure-numpy fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.active.learner as learner_mod
import repro.forest._cgrower as _cgrower
import repro.surrogate.adapters as adapters_mod
from repro.active import ActiveLearner, LearnerConfig
from repro.forest import RandomForestRegressor, RegressionTree
from repro.forest.uncertainty import across_tree_std, total_variance_std
from repro.sampling import make_strategy
from repro.space import DataPool

_TREE_FIELDS = (
    "feature_",
    "threshold_",
    "left_",
    "right_",
    "value_",
    "variance_",
    "count_",
    "impurity_",
)


class _ReferenceForest(RandomForestRegressor):
    """The pre-optimisation surrogate: per-node argsort growth, per-tree
    Python prediction loops, no pool-score cache."""

    # pool_mu_sigma/pool_mu treat None as "no pool-aware scorer".
    predict_with_uncertainty_pool = None
    predict_pool = None

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("presort", False)
        super().__init__(**kwargs)

    def per_tree_predictions(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.stack([t.predict(X) for t in self.trees_], axis=0)

    def predict_with_uncertainty(self, X: np.ndarray):
        self._require_fitted()
        if self.uncertainty == "across_trees":
            P = self.per_tree_predictions(X)
            return P.mean(axis=0), across_tree_std(P)
        means, variances = [], []
        for t in self.trees_:
            m, v, _ = t.leaf_stats(X)
            means.append(m)
            variances.append(v)
        M = np.stack(means, axis=0)
        V = np.stack(variances, axis=0)
        return M.mean(axis=0), total_variance_std(M, V)


@pytest.fixture(params=["c-kernel", "numpy-fallback"])
def kernel_mode(request, monkeypatch):
    """Run each test against both the C kernel and the pure-numpy path."""
    if request.param == "numpy-fallback":
        monkeypatch.setattr(_cgrower, "_lib", None)
        monkeypatch.setattr(_cgrower, "_attempted", True)
    else:
        if _cgrower.load() is None:
            pytest.skip("C kernel unavailable in this environment")
    return request.param


def _random_problem(seed, n=180, d=7):
    r = np.random.default_rng(seed)
    X = r.normal(size=(n, d)) * (10.0 ** r.integers(-2, 3))
    X[:, 0] = np.round(X[:, 0], 1)  # ties
    if d > 2:
        X[:, 1] = 1.25  # constant feature
    y = np.abs(r.normal(size=n)) * (10.0 ** r.integers(-2, 3)) + 1e-3
    return X, y


class TestTreeGrowth:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("max_features", [None, "third", "sqrt"])
    def test_presorted_growth_bit_identical(self, kernel_mode, seed, max_features):
        X, y = _random_problem(seed)
        ra = np.random.default_rng(seed + 99)
        rb = np.random.default_rng(seed + 99)
        ref = RegressionTree(
            max_features=max_features, min_samples_leaf=2, rng=ra, presort=False
        ).fit(X, y)
        fast = RegressionTree(
            max_features=max_features, min_samples_leaf=2, rng=rb, presort=True
        ).fit(X, y)
        for field in _TREE_FIELDS:
            a, b = getattr(ref, field), getattr(fast, field)
            assert a.shape == b.shape
            assert (a == b).all(), field
        # Identical RNG consumption, not just identical output.
        assert ra.bit_generator.state == rb.bit_generator.state

    def test_forest_growth_consumes_rng_identically(self, kernel_mode):
        X, y = _random_problem(3)
        ref = _ReferenceForest(n_estimators=7, seed=11).fit(X, y)
        fast = RandomForestRegressor(n_estimators=7, seed=11).fit(X, y)
        assert ref.rng.bit_generator.state == fast.rng.bit_generator.state
        for tr, tf in zip(ref.trees_, fast.trees_):
            for field in _TREE_FIELDS:
                assert (getattr(tr, field) == getattr(tf, field)).all()


class TestForestInference:
    @pytest.mark.parametrize("uncertainty", ["across_trees", "total_variance"])
    def test_predict_paths_bit_identical(self, kernel_mode, uncertainty):
        X, y = _random_problem(5)
        Q = _random_problem(6)[0]
        ref = _ReferenceForest(n_estimators=9, seed=2, uncertainty=uncertainty).fit(X, y)
        fast = RandomForestRegressor(n_estimators=9, seed=2, uncertainty=uncertainty).fit(X, y)
        assert (ref.per_tree_predictions(Q) == fast.per_tree_predictions(Q)).all()
        assert (ref.predict(Q) == fast.predict(Q)).all()
        mu_r, sd_r = ref.predict_with_uncertainty(Q)
        mu_f, sd_f = fast.predict_with_uncertainty(Q)
        assert (mu_r == mu_f).all() and (sd_r == sd_f).all()
        # Packed apply routes to the same leaves as the per-tree apply.
        packed = fast.packed()
        leaves = packed.apply(np.atleast_2d(np.asarray(Q, dtype=np.float64)))
        for t, tree in enumerate(fast.trees_):
            local = leaves[t] - int(packed.offsets[t])
            assert (local == tree.apply(Q)).all()

    @pytest.mark.parametrize("uncertainty", ["across_trees", "total_variance"])
    def test_pool_cache_bit_identical_through_partial_updates(
        self, kernel_mode, uncertainty
    ):
        X, y = _random_problem(7)
        pool = _random_problem(8, n=400)[0]
        r = np.random.default_rng(0)
        fast = RandomForestRegressor(n_estimators=8, seed=4, uncertainty=uncertainty).fit(X, y)
        rows = np.sort(r.choice(400, size=350, replace=False))
        for step in range(4):
            mu_c, sd_c = fast.predict_with_uncertainty_pool(pool, rows)
            mu_p, sd_p = fast.predict_with_uncertainty(pool[rows])
            assert (mu_c == mu_p).all() and (sd_c == sd_p).all()
            assert (fast.predict_pool(pool, rows) == fast.predict(pool[rows])).all()
            # Shrink the row set (pool.take semantics) and partially refresh.
            rows = rows[:: 2] if step == 1 else rows[: len(rows) - 5]
            Xn, yn = _random_problem(20 + step, n=3)
            fast.update(Xn, yn, refresh_fraction=0.25)


def _run_learner(seed, strategy_name, forest_cls, disable_stat_reuse,
                 monkeypatch_ctx, **cfg_overrides):
    r = np.random.default_rng(seed)
    n_pool, n_test = 140, 110
    Xall = r.random((n_pool + n_test, 5))
    truth = lambda A: 0.6 + A[:, 0] + 0.25 * np.sin(7 * A[:, 1])  # noqa: E731
    pool = DataPool(Xall[:n_pool])
    X_test, y_test = Xall[n_pool:], truth(Xall[n_pool:])
    oracle_rng = np.random.default_rng(seed + 1)
    oracle = lambda A: truth(np.atleast_2d(A)) * np.exp(  # noqa: E731
        oracle_rng.normal(0, 0.01, len(np.atleast_2d(A)))
    )
    cfg = dict(n_init=8, n_batch=1, n_max=18, eval_every=3, n_estimators=6)
    cfg.update(cfg_overrides)
    # The learner builds its forest through the surrogate registry; the
    # adapter module's constructor binding is the one seam to swap the
    # reference implementation in.
    monkeypatch_ctx.setattr(adapters_mod, "RandomForestRegressor", forest_cls)
    if disable_stat_reuse:
        monkeypatch_ctx.setattr(
            learner_mod, "consume_selection_stats", lambda *a: None
        )
    learner = ActiveLearner(
        pool=pool,
        evaluate=oracle,
        X_test=X_test,
        y_test=y_test,
        strategy=make_strategy(strategy_name),
        config=LearnerConfig(**cfg),
        seed=seed + 2,
    )
    return learner.run()


class TestFullRunEquivalence:
    @pytest.mark.parametrize(
        "strategy_name", ["pwu", "maxu", "pbus", "bestperf", "brs", "ei"]
    )
    def test_history_bit_identical(self, kernel_mode, strategy_name, monkeypatch):
        with monkeypatch.context() as m:
            ref = _run_learner(31, strategy_name, _ReferenceForest, True, m)
        with monkeypatch.context() as m:
            fast = _run_learner(31, strategy_name, RandomForestRegressor, False, m)
        assert len(ref.records) == len(fast.records)
        for a, b in zip(ref.records, fast.records):
            assert a.selected == b.selected
            assert a.selected_mu == b.selected_mu
            assert a.selected_sigma == b.selected_sigma
            assert a.rmse == b.rmse
            assert a.n_train == b.n_train
            assert a.cumulative_cost == b.cumulative_cost

    def test_history_bit_identical_partial_retrain(self, kernel_mode, monkeypatch):
        cfg = dict(retrain="partial", refresh_fraction=0.34)
        with monkeypatch.context() as m:
            ref = _run_learner(55, "pwu", _ReferenceForest, True, m, **cfg)
        with monkeypatch.context() as m:
            fast = _run_learner(55, "pwu", RandomForestRegressor, False, m, **cfg)
        for a, b in zip(ref.records, fast.records):
            assert a.selected == b.selected
            assert a.selected_mu == b.selected_mu
            assert a.selected_sigma == b.selected_sigma
            assert a.rmse == b.rmse


def _histories_equal(a, b) -> bool:
    if len(a.records) != len(b.records):
        return False
    return all(
        x.selected == y.selected
        and x.selected_mu == y.selected_mu
        and x.selected_sigma == y.selected_sigma
        and x.rmse == y.rmse
        and x.n_train == y.n_train
        and x.cumulative_cost == y.cumulative_cost
        for x, y in zip(a.records, b.records)
    )


class TestTelemetryEquivalence:
    """Telemetry spans/counters never perturb results: tracing on and off
    produce bit-identical histories (spans touch no RNG and no control
    flow), at every retrain mode and through the engine at any job count."""

    @pytest.mark.parametrize("strategy_name", ["pwu", "pbus", "random"])
    def test_traced_run_bit_identical(self, kernel_mode, strategy_name, monkeypatch):
        from repro import telemetry

        with monkeypatch.context() as m:
            off = _run_learner(77, strategy_name, RandomForestRegressor, False, m)
        with telemetry.tracing(True):
            with monkeypatch.context() as m:
                on = _run_learner(77, strategy_name, RandomForestRegressor, False, m)
        assert len(telemetry.drain_events()) > 0
        assert _histories_equal(off, on)

    def test_traced_partial_retrain_bit_identical(self, kernel_mode, monkeypatch):
        from repro import telemetry

        cfg = dict(retrain="partial", refresh_fraction=0.34)
        with monkeypatch.context() as m:
            off = _run_learner(56, "pwu", RandomForestRegressor, False, m, **cfg)
        with telemetry.tracing(True):
            with monkeypatch.context() as m:
                on = _run_learner(56, "pwu", RandomForestRegressor, False, m, **cfg)
        telemetry.drain_events()
        assert _histories_equal(off, on)

    def test_traced_engine_run_bit_identical(self, kernel_mode, tiny_scale):
        from repro import telemetry
        from repro.engine.context import EngineConfig
        from repro.experiments.runner import strategy_trace

        quiet = EngineConfig(jobs=1, progress=False)
        off = strategy_trace("mvt", "pwu", tiny_scale, seed=9, engine=quiet)
        with telemetry.tracing(True):
            on = strategy_trace("mvt", "pwu", tiny_scale, seed=9, engine=quiet)
        telemetry.drain_events()
        assert np.array_equal(off.n_train, on.n_train)
        assert np.array_equal(off.cc_mean, on.cc_mean)
        for key in off.rmse_mean:
            assert np.array_equal(off.rmse_mean[key], on.rmse_mean[key])
