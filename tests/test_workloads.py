"""Tests for the benchmark base class and registry."""

import numpy as np
import pytest

from repro.noise import MeasurementProtocol
from repro.space import IntegerParameter, ParameterSpace
from repro.workloads import (
    Benchmark,
    all_benchmarks,
    get_benchmark,
    register_benchmark,
)


class _BrokenShape(Benchmark):
    name = "broken-shape"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return np.ones(len(X) + 1)  # wrong length


class _BrokenSign(Benchmark):
    name = "broken-sign"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return np.zeros(len(X))  # non-positive times


class _Good(Benchmark):
    name = "good"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return 1.0 + np.atleast_2d(X)[:, 0]


class TestBenchmarkContract:
    def test_measure_checks_oracle_shape(self, rng):
        with pytest.raises(RuntimeError, match="shape"):
            _BrokenShape().measure_encoded(np.zeros((3, 1)), rng)

    def test_measure_checks_positivity(self, rng):
        with pytest.raises(RuntimeError, match="non-positive"):
            _BrokenSign().measure_encoded(np.zeros((3, 1)), rng)

    def test_measure_single_config_dict(self, rng):
        b = _Good()
        t = b.measure({"x": 4}, rng)
        assert t == pytest.approx(5.0)

    def test_true_time_single_config(self):
        assert _Good().true_time({"x": 9}) == pytest.approx(10.0)

    def test_noise_free_protocol_returns_truth(self, rng):
        b = _Good()
        X = b.space.sample_encoded(rng, 10)
        assert np.allclose(b.measure_encoded(X, rng), b.true_times_encoded(X))


class TestRegistry:
    def test_registry_inventory(self):
        """12 paper kernels + kripke + hypre + 6 extra SPAPT problems."""
        names = all_benchmarks()
        assert len(names) == 20
        assert names[12:14] == ("kripke", "hypre")
        assert set(names[14:]) == {
            "covariance", "fdtd", "seidel", "stencil3d", "tensor", "trmm",
        }

    def test_get_returns_fresh_instances(self):
        a = get_benchmark("atax")
        b = get_benchmark("atax")
        assert a is not b
        assert a.name == b.name == "atax"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known:"):
            get_benchmark("doom3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark("atax", _Good)
