"""Tests for the benchmark base class and registry."""

import numpy as np
import pytest

from repro.noise import MeasurementProtocol
from repro.space import IntegerParameter, ParameterSpace
from repro.workloads import (
    Benchmark,
    all_benchmarks,
    get_benchmark,
    register_benchmark,
)


class _BrokenShape(Benchmark):
    name = "broken-shape"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return np.ones(len(X) + 1)  # wrong length


class _BrokenSign(Benchmark):
    name = "broken-sign"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return np.zeros(len(X))  # non-positive times


class _Good(Benchmark):
    name = "good"

    def __init__(self):
        super().__init__(
            ParameterSpace([IntegerParameter("x", 0, 9)]),
            MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0),
        )

    def true_times_encoded(self, X):
        return 1.0 + np.atleast_2d(X)[:, 0]


class TestBenchmarkContract:
    def test_measure_checks_oracle_shape(self, rng):
        with pytest.raises(RuntimeError, match="shape"):
            _BrokenShape().measure_encoded(np.zeros((3, 1)), rng)

    def test_measure_checks_positivity(self, rng):
        with pytest.raises(RuntimeError, match="non-positive"):
            _BrokenSign().measure_encoded(np.zeros((3, 1)), rng)

    def test_measure_single_config_dict(self, rng):
        b = _Good()
        t = b.measure({"x": 4}, rng)
        assert t == pytest.approx(5.0)

    def test_true_time_single_config(self):
        assert _Good().true_time({"x": 9}) == pytest.approx(10.0)

    def test_noise_free_protocol_returns_truth(self, rng):
        b = _Good()
        X = b.space.sample_encoded(rng, 10)
        assert np.allclose(b.measure_encoded(X, rng), b.true_times_encoded(X))


class TestEvaluateBatch:
    """The batched evaluation contract (DESIGN.md §2h) on the base class."""

    def test_measure_encoded_is_an_alias(self, rng):
        b = _Good()
        X = b.space.sample_encoded(rng, 16)
        batched = b.evaluate_batch(X, np.random.default_rng(7))
        alias = b.measure_encoded(X, np.random.default_rng(7))
        np.testing.assert_array_equal(batched, alias)

    def test_every_registered_benchmark_evaluates_a_batch(self):
        for name in all_benchmarks():
            b = get_benchmark(name)
            X = b.space.sample_encoded(np.random.default_rng(3), 8)
            y = b.evaluate_batch(X, np.random.default_rng(3))
            assert y.shape == (8,)
            assert np.isfinite(y).all() and (y > 0).all()

    def test_fused_batch_is_not_two_half_batches(self, rng):
        """Callers must never chunk internally: the protocol's noise draw
        has shape ``(n, n_repeats)``, so splitting a batch consumes the
        generator differently and changes the bytes."""
        b = get_benchmark("atax")
        X = b.space.sample_encoded(rng, 12)
        fused = b.evaluate_batch(X, np.random.default_rng(11))
        halves_rng = np.random.default_rng(11)
        halves = np.concatenate(
            [b.evaluate_batch(X[:6], halves_rng), b.evaluate_batch(X[6:], halves_rng)]
        )
        assert not np.array_equal(fused, halves)

    def test_kernel_batches_route_through_the_cost_model(self, rng):
        from repro.telemetry import counters

        b = get_benchmark("atax")
        X = b.space.sample_encoded(rng, 32)
        before = counters.value("costmodel.batches")
        b.evaluate_batch(X, np.random.default_rng(1))
        assert counters.value("costmodel.batches") == before + 1


class TestRegistry:
    def test_registry_inventory(self):
        """12 paper kernels + kripke + hypre + 6 extra SPAPT problems,
        plus whatever the distilled zoo ships (always listed last)."""
        names = all_benchmarks()
        zoo = [n for n in names if n.startswith("distilled:")]
        assert len(names) == 20 + len(zoo)
        assert names[12:14] == ("kripke", "hypre")
        assert set(names[14:20]) == {
            "covariance", "fdtd", "seidel", "stencil3d", "tensor", "trmm",
        }
        assert list(names[20:]) == zoo

    def test_get_returns_fresh_instances(self):
        a = get_benchmark("atax")
        b = get_benchmark("atax")
        assert a is not b
        assert a.name == b.name == "atax"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known:"):
            get_benchmark("doom3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark("atax", _Good)

    def test_kernel_and_app_alias_prefixes(self):
        assert get_benchmark("kernel:atax").name == "atax"
        assert get_benchmark("app:kripke").name == "kripke"

    def test_alias_prefix_unknown_name_still_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_benchmark("kernel:attax")

    def test_surrogate_prefix_missing_file_is_typed(self):
        from repro.envelope import EnvelopeError

        with pytest.raises(EnvelopeError, match="distilled-workload"):
            get_benchmark("surrogate:/nonexistent/x.npz")

    def test_zoo_entries_resolve_and_name_themselves(self):
        from repro.workloads import zoo_entries

        for name in zoo_entries():
            b = get_benchmark(name)
            assert b.name == name.split(":", 1)[1]
            assert b.provenance["source"] in all_benchmarks()
