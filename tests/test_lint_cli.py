"""CLI surfaces of the lint: ``repro lint``, ``python -m repro.analysis``.

Covers the exit-code contract (0 clean, 1 findings, 2 usage error), the
documented JSON schema and its ``findings_from_json`` round-trip, and
the acceptance check that an introduced violation is reported as
``file:line:col RULE message`` with a non-zero exit.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    findings_from_json,
    lint_paths,
    permissive_config,
)
from repro.analysis.cli import main as lint_main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lintpkg"
FINDING_LINE = re.compile(r"^\S+\.py:\d+:\d+ [A-Z]+\d* .+$")


@pytest.fixture(autouse=True)
def _scratch_cwd(tmp_path_factory, monkeypatch):
    """The CLI caches to ``.repro-lint-cache.json`` in cwd by default;
    run every test from a scratch directory so no cache file lands in
    the repository checkout."""
    monkeypatch.chdir(tmp_path_factory.mktemp("lint-cwd"))


def test_clean_tree_exits_zero(capsys):
    code = lint_main([str(ROOT / "src" / "repro")])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("clean:")


def test_fixture_violations_exit_one_with_clickable_lines(capsys):
    code = lint_main([str(FIXTURES), "--no-defaults"])
    out = capsys.readouterr().out.strip().splitlines()
    assert code == 1
    finding_lines = out[:-1]  # last line is the summary
    assert len(finding_lines) == 14
    for line in finding_lines:
        assert FINDING_LINE.match(line), line


def test_json_report_matches_schema_and_round_trips(capsys):
    code = lint_main([str(FIXTURES), "--no-defaults", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["tool"] == "repro.analysis"
    assert payload["files_scanned"] == 17
    assert payload["summary"]["total"] == 14
    assert payload["summary"]["errors"] == 14
    assert payload["summary"]["warnings"] == 0
    assert set(payload["summary"]["by_rule"]) == set(payload["rules"])
    assert len(payload["suppressed"]) == 14
    for entry in payload["suppressed"]:
        assert entry["reason"]

    # Round-trip: the JSON findings reconstruct the exact Finding objects.
    direct = lint_paths([FIXTURES], config=permissive_config())
    assert findings_from_json(payload) == direct.findings
    fingerprints = [e["fingerprint"] for e in payload["findings"]]
    assert fingerprints == [f.fingerprint for f in direct.findings]


def test_usage_errors_exit_two(capsys):
    assert lint_main([str(FIXTURES), "--severity", "DET002"]) == 2
    assert lint_main([str(FIXTURES), "--select", "NOPE999"]) == 2
    assert lint_main(["definitely/not/a/path"]) == 2
    err = capsys.readouterr().err
    assert "repro lint:" in err


def test_list_rules_prints_every_rule_with_scope(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "SPAWN001",
        "TEL001",
        "IO001",
        "EXC001",
        "FLOW001",
        "FLOW002",
        "RACE001",
        "RACE002",
        "ARCH001",
    ):
        assert rule_id in out
    # every row carries the scope column
    rows = [line for line in out.splitlines() if line.strip()]
    assert all(" module " in row or " project " in row for row in rows)


def test_write_baseline_flow(tmp_path, capsys):
    target = tmp_path / "m.py"
    target.write_text(
        "def f(p):\n    with open(p, 'w') as fh:\n        fh.write('x')\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main([str(target), "--no-defaults", "--write-baseline", str(baseline)])
        == 0
    )
    capsys.readouterr()
    assert (
        lint_main([str(target), "--no-defaults", "--baseline", str(baseline)])
        == 0
    )
    assert "1 baselined" in capsys.readouterr().out


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--no-cache", str(ROOT / "src" / "repro")]) == 0
    assert repro_main(["lint", "--no-cache", str(FIXTURES), "--no-defaults"]) == 1
    capsys.readouterr()


def _run_module(args, cwd):
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        # --no-cache keeps subprocess runs from dropping a cache file in cwd
        [sys.executable, "-m", "repro.analysis", "--no-cache", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=120,
    )


def test_python_dash_m_clean_on_shipped_tree():
    proc = _run_module(["src/repro"], cwd=ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_python_dash_m_flags_an_introduced_violation(tmp_path):
    bad = tmp_path / "regression.py"
    bad.write_text(
        '"""A module that breaks the determinism contract."""\n'
        "import random\n\n\n"
        "def jitter():\n"
        '    """Draws from the hidden global stream."""\n'
        "    return random.random()\n",
        encoding="utf-8",
    )
    proc = _run_module([str(bad), "--no-defaults"], cwd=ROOT)
    assert proc.returncode == 1
    first = proc.stdout.strip().splitlines()[0]
    assert FINDING_LINE.match(first), first
    assert "DET001" in first and ":7:" in first


@pytest.mark.parametrize("entry", ["repro.analysis", "repro.cli"])
def test_help_exits_zero(entry):
    args = ["--help"] if entry == "repro.analysis" else ["lint", "--help"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", entry, *args],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "--format" in proc.stdout
# -- whole-program flags -----------------------------------------------------


def test_explain_renders_rationale_and_examples(capsys):
    assert lint_main(["--explain", "FLOW001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("FLOW001 (project):")
    assert "Violating:" in out and "Clean:" in out
    assert "worker-entry" in out  # the docstring example survives rendering


def test_explain_module_rule_and_unknown_rule(capsys):
    assert lint_main(["--explain", "DET001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("DET001 (module):")
    assert lint_main(["--explain", "NOPE999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_graph_dump_is_json_with_entries(capsys):
    assert lint_main([str(FIXTURES), "--no-defaults", "--graph"]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert "lintpkg.flow001" in dump["modules"]
    assert dump["modules"]["lintpkg.workloads.arch001"]["imports"] == [
        "lintpkg.engine"
    ]
    assert "lintpkg.flow001.simulate" in dump["worker_entries"]
    assert "lintpkg.race001.Board.post" in dump["thread_entries"]


def test_jobs_output_matches_serial(capsys):
    code1 = lint_main([str(FIXTURES), "--no-defaults", "--no-cache"])
    serial = capsys.readouterr().out
    code2 = lint_main([str(FIXTURES), "--no-defaults", "--no-cache", "--jobs", "4"])
    parallel = capsys.readouterr().out
    assert (code1, serial) == (code2, parallel)


def test_changed_scopes_report_to_git_diff(tmp_path, capsys, monkeypatch):
    def git(*args):
        subprocess.run(
            ["git", *args],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env={
                **os.environ,
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
            },
        )

    (tmp_path / "clean.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "other.py").write_text("x = 1\n")
    git("init", "-q")
    git("add", ".")
    git("commit", "-q", "-m", "seed")

    monkeypatch.chdir(tmp_path)
    # Nothing changed vs HEAD: the pre-existing violation is out of scope.
    assert lint_main([str(tmp_path), "--no-defaults", "--changed"]) == 0
    capsys.readouterr()

    # Touch only other.py: clean.py's violation stays out of scope.
    (tmp_path / "other.py").write_text("x = 2\n")
    assert lint_main([str(tmp_path), "--no-defaults", "--changed"]) == 0
    capsys.readouterr()

    # Touch clean.py itself: now it is reported.
    (tmp_path / "clean.py").write_text("import time\nt = time.time() + 1\n")
    assert lint_main([str(tmp_path), "--no-defaults", "--changed"]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out


def test_changed_outside_git_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "m.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--no-defaults", "--changed"]) == 2
    assert "--changed" in capsys.readouterr().err
