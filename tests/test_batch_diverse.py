"""Tests for diversity-aware batch selection."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor
from repro.sampling import MaxUncertaintySampling, PWUSampling, UniformRandomSampling
from repro.sampling.batch import DiverseBatchSampling
from repro.space import DataPool


@pytest.fixture
def clustered_problem(rng):
    """A pool with two tight clusters plus scattered points; a model whose
    uncertainty peaks inside one cluster."""
    cluster_a = 0.05 * rng.random((30, 2))  # near origin
    cluster_b = np.array([0.9, 0.9]) + 0.05 * rng.random((30, 2))
    scatter = rng.random((60, 2))
    X = np.vstack([cluster_a, cluster_b, scatter])
    y = 1.0 + X[:, 0] + X[:, 1]
    model = RandomForestRegressor(n_estimators=10, seed=0).fit(X[::3], y[::3])
    return DataPool(X), model


class TestScoresHook:
    def test_score_based_strategies_expose_scores(self, clustered_problem):
        pool, model = clustered_problem
        for strat in (PWUSampling(0.05), MaxUncertaintySampling()):
            s = strat.scores(model, pool.X)
            assert s.shape == (pool.n_total,)

    def test_filter_based_strategy_raises(self, clustered_problem):
        pool, model = clustered_problem
        with pytest.raises(NotImplementedError):
            UniformRandomSampling().scores(model, pool.X)

    def test_scores_consistent_with_selection(self, clustered_problem, rng):
        pool, model = clustered_problem
        strat = PWUSampling(0.05)
        picked = strat.select(model, pool, 1, rng)
        s = strat.scores(model, pool.X)
        assert s[picked[0]] == s.max()


class TestDiverseBatch:
    def test_contract(self, clustered_problem, rng):
        pool, model = clustered_problem
        strat = DiverseBatchSampling(PWUSampling(0.05))
        picked = strat.select(model, pool, 8, rng)
        assert len(np.unique(picked)) == 8

    def test_single_pick_matches_base(self, clustered_problem, rng):
        pool, model = clustered_problem
        base = PWUSampling(0.05)
        a = DiverseBatchSampling(base).select(model, pool, 1, rng)
        b = base.select(model, pool, 1, rng)
        assert a.tolist() == b.tolist()

    def test_batch_spreads_wider_than_greedy(self, rng):
        """With uncertainty concentrated in one cluster, greedy top-k piles
        into it; the diversified batch must spread wider."""

        class PeakedModel:
            """σ peaks at the origin cluster; μ is flat."""

            def predict_with_uncertainty(self, X):
                d2 = (np.asarray(X) ** 2).sum(axis=1)
                return np.ones(len(X)), np.exp(-20.0 * d2)

        cluster = 0.05 * rng.random((40, 2))
        scatter = rng.random((80, 2))
        pool = DataPool(np.vstack([cluster, scatter]))
        model = PeakedModel()
        base = MaxUncertaintySampling()
        greedy = base.select(model, pool, 10, rng)
        diverse = DiverseBatchSampling(base).select(model, pool, 10, rng)

        def mean_pairwise(idx):
            P = pool.X[idx]
            d = np.sqrt(((P[:, None, :] - P[None, :, :]) ** 2).sum(-1))
            return d[np.triu_indices(len(P), 1)].mean()

        assert mean_pairwise(diverse) > 1.5 * mean_pairwise(greedy)

    def test_name_composition(self):
        strat = DiverseBatchSampling(PWUSampling(0.05))
        assert strat.name == "pwu+diverse"

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            DiverseBatchSampling(PWUSampling(0.05), bandwidth_factor=0.0)

    def test_runs_in_algorithm_1(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace(
            "mvt",
            DiverseBatchSampling(PWUSampling(0.05)),
            tiny_scale,
            seed=0,
            config_overrides={"n_batch": 4},
        )
        assert trace.n_train[-1] == tiny_scale.n_max
