"""Tests for Latin-hypercube pool sampling."""

import numpy as np
import pytest

from repro.space import Constraint, IntegerParameter, OrdinalParameter, ParameterSpace


@pytest.fixture
def space():
    return ParameterSpace(
        [
            OrdinalParameter("t", [1, 16, 32, 64, 128, 256, 512]),
            IntegerParameter("u", 1, 31),
        ]
    )


class TestLHS:
    def test_shape_and_admissibility(self, space, rng):
        X = space.sample_lhs_encoded(rng, 100)
        assert X.shape == (100, 2)
        for cfg in space.decode(X):
            assert cfg["t"] in space["t"]
            assert cfg["u"] in space["u"]

    def test_stratification_beats_iid_on_axis_coverage(self, space):
        """With n = #values per axis, LHS hits (nearly) every value; iid
        uniform reliably misses some."""
        n = 31
        lhs_hits, iid_hits = [], []
        for seed in range(20):
            rng = np.random.default_rng(seed)
            lhs = space.sample_lhs_encoded(rng, n)
            iid = space.sample_encoded(np.random.default_rng(seed + 1000), n)
            lhs_hits.append(len(np.unique(lhs[:, 1])))
            iid_hits.append(len(np.unique(iid[:, 1])))
        assert np.mean(lhs_hits) > np.mean(iid_hits)
        assert np.mean(lhs_hits) >= 30.5  # essentially all 31 values

    def test_deterministic_given_rng(self, space):
        a = space.sample_lhs_encoded(np.random.default_rng(5), 40)
        b = space.sample_lhs_encoded(np.random.default_rng(5), 40)
        assert np.array_equal(a, b)

    def test_constrained_space_rejected(self, rng):
        s = ParameterSpace(
            [IntegerParameter("a", 1, 4), IntegerParameter("b", 1, 4)],
            constraints=[Constraint("c", lambda X: X[:, 0] <= X[:, 1])],
        )
        with pytest.raises(ValueError, match="Latin-hypercube"):
            s.sample_lhs_encoded(rng, 5)

    def test_negative_count(self, space, rng):
        with pytest.raises(ValueError, match="negative"):
            space.sample_lhs_encoded(rng, -1)
