"""The repro.surrogate protocol: registry, adapters, meta-surrogates,
serialization envelope, and end-to-end determinism."""

from __future__ import annotations

import io

import numpy as np
import pytest

import repro.api
from repro.engine.context import EngineConfig, use_engine
from repro.forest import RandomForestRegressor, load_forest, save_forest
from repro.registry import NameRegistry
from repro.surrogate import (
    SURROGATE_NAMES,
    ForestSurrogate,
    GPSurrogate,
    SelectSurrogate,
    StackSurrogate,
    Surrogate,
    TransferSurrogate,
    available_surrogates,
    load_surrogate,
    make_surrogate,
    register_surrogate,
    save_surrogate,
    supports_partial_update,
    surrogate_bytes,
    surrogate_entry,
)
from repro.surrogate import registry as registry_mod
from repro.surrogate.select import fold_slices


@pytest.fixture(autouse=True)
def _quiet_engine():
    with use_engine(EngineConfig(jobs=1, progress=False)):
        yield


@pytest.fixture
def positive_data(rng) -> "tuple[np.ndarray, np.ndarray]":
    """Positive-target regression data (the GP models log execution time)."""
    X = rng.random((60, 4))
    y = np.exp(0.8 * X[:, 0] + np.sin(4.0 * X[:, 1]) * 0.3) + 0.1 * X[:, 2]
    return X, y


def _fit(name: str, X, y, seed=0, **options) -> Surrogate:
    return make_surrogate(name, rng=np.random.default_rng(seed), options=options)\
        .fit(X, y)


class TestRegistry:
    def test_builtin_names_registered(self):
        assert set(SURROGATE_NAMES) <= set(available_surrogates())

    def test_every_builtin_is_buildable(self, positive_data):
        X, y = positive_data
        source = _fit("forest", X, y)
        for name in SURROGATE_NAMES:
            options = {"source": source} if name == "transfer" else {}
            model = make_surrogate(
                name, rng=np.random.default_rng(0), options=options
            )
            assert isinstance(model, Surrogate)
            assert model.kind == name

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean 'forest'"):
            surrogate_entry("forrest")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            make_surrogate("no-such-surrogate")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_surrogate("forest", lambda **_: None)

    def test_register_overwrite_is_explicit(self):
        entry = surrogate_entry("forest")
        register_surrogate(
            "forest",
            entry.factory,
            supports_partial_update=True,
            overwrite=True,
        )
        assert surrogate_entry("forest").factory is entry.factory

    def test_register_and_cleanup_custom_surrogate(self):
        register_surrogate("_probe", lambda **kwargs: ForestSurrogate.build())
        try:
            assert "_probe" in available_surrogates()
            assert isinstance(make_surrogate("_probe"), ForestSurrogate)
        finally:
            del registry_mod._REGISTRY["_probe"]
        assert "_probe" not in available_surrogates()

    def test_capability_flags(self):
        assert supports_partial_update("forest")
        for name in ("gp", "select", "stack", "transfer"):
            assert not supports_partial_update(name)

    def test_transfer_requires_source(self):
        with pytest.raises(ValueError, match="source"):
            make_surrogate("transfer")


class TestNameRegistry:
    def test_generic_duplicate_rejection_and_overwrite(self):
        reg = NameRegistry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="widget 'a' is already registered"):
            reg.register("a", 2)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_dict_like_protocol(self):
        reg = NameRegistry("widget")
        reg.register("a", 1)
        reg.register("b", 2)
        assert "a" in reg and len(reg) == 2 and sorted(reg) == ["a", "b"]
        assert reg.available() == ("a", "b")
        assert reg.pop("a") == 1
        del reg["b"]
        assert len(reg) == 0


class TestForestAdapter:
    def test_delegates_to_wrapped_forest(self, positive_data):
        X, y = positive_data
        raw = RandomForestRegressor(n_estimators=8, seed=0).fit(X, y)
        wrapped = ForestSurrogate(
            RandomForestRegressor(n_estimators=8, seed=0)
        ).fit(X, y)
        assert np.array_equal(raw.predict(X), wrapped.predict(X))
        mu_r, sd_r = raw.predict_with_uncertainty(X)
        mu_w, sd_w = wrapped.predict_with_uncertainty(X)
        assert np.array_equal(mu_r, mu_w) and np.array_equal(sd_r, sd_w)
        assert np.array_equal(raw.training_targets, wrapped.training_targets)

    def test_pool_scorers_reexposed(self):
        model = ForestSurrogate.build(n_estimators=4, seed=0)
        assert model.predict_with_uncertainty_pool is not None
        assert model.predict_pool is not None

    def test_partial_update_supported(self, positive_data):
        X, y = positive_data
        model = ForestSurrogate.build(n_estimators=8, seed=0).fit(X[:40], y[:40])
        model.update(X[40:], y[40:])
        assert len(model.training_targets) == len(y)


class TestDeterminism:
    def test_gp_same_seed_same_predictions(self, positive_data):
        X, y = positive_data
        a = _fit("gp", X, y, seed=7).predict(X)
        b = _fit("gp", X, y, seed=7).predict(X)
        assert np.array_equal(a, b)

    def test_select_same_seed_same_choice_and_predictions(self, positive_data):
        X, y = positive_data
        a = _fit("select", X, y, seed=7)
        b = _fit("select", X, y, seed=7)
        assert a.chosen_name == b.chosen_name
        assert a.cv_errors == b.cv_errors
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_stack_same_seed_same_weights_and_predictions(self, positive_data):
        X, y = positive_data
        a = _fit("stack", X, y, seed=7)
        b = _fit("stack", X, y, seed=7)
        assert np.array_equal(a.weights, b.weights)
        mu_a, sd_a = a.predict_with_uncertainty(X)
        mu_b, sd_b = b.predict_with_uncertainty(X)
        assert np.array_equal(mu_a, mu_b) and np.array_equal(sd_a, sd_b)

    def test_fold_assignment_depends_only_on_seed_and_size(self):
        folds_a = fold_slices(30, 3, fold_seed=99)
        folds_b = fold_slices(30, 3, fold_seed=99)
        assert all(np.array_equal(fa, fb) for fa, fb in zip(folds_a, folds_b))
        folds_c = fold_slices(30, 3, fold_seed=100)
        assert any(
            not np.array_equal(fa, fc) for fa, fc in zip(folds_a, folds_c)
        )

    def test_fold_slices_infeasible_cases(self):
        assert fold_slices(2, 3, fold_seed=0) is None  # 1 training row left
        assert fold_slices(3, 2, fold_seed=0) is None
        assert fold_slices(1, 2, fold_seed=0) is None
        folds = fold_slices(30, 3, fold_seed=0)
        assert sorted(np.concatenate(folds)) == list(range(30))


class TestSelect:
    def test_cv_errors_cover_candidates(self, positive_data):
        X, y = positive_data
        model = _fit("select", X, y, seed=0)
        assert set(model.cv_errors) == {"forest", "gp"}
        assert model.chosen_name == min(
            model.cv_errors, key=model.cv_errors.get
        )

    def test_falls_back_to_first_candidate_when_cv_infeasible(self):
        X = np.array([[0.1, 0.2], [0.8, 0.9]])
        y = np.array([1.0, 2.0])
        model = _fit("select", X, y, seed=0)
        assert model.chosen_name == "forest"
        assert model.cv_errors == {}
        assert model.predict(X).shape == (2,)

    def test_brittle_candidate_scores_inf_not_abort(self, positive_data):
        X, y = positive_data
        # Negative targets break the log-target GP; select must still fit.
        model = _fit("select", X, y - y.max() - 1.0, seed=0)
        assert model.cv_errors["gp"] == float("inf")
        assert model.chosen_name == "forest"


class TestStack:
    def test_weights_normalised(self, positive_data):
        X, y = positive_data
        model = _fit("stack", X, y, seed=0)
        assert model.weights.shape == (2,)
        assert model.weights.sum() == pytest.approx(1.0)
        assert (model.weights > 0).all()

    def test_disagreement_inflates_sigma(self, positive_data):
        X, y = positive_data
        model = _fit("stack", X, y, seed=0)
        mu, sd = model.predict_with_uncertainty(X)
        mus, sds = zip(
            *(m.predict_with_uncertainty(X) for m in model.models)
        )
        w = model.weights[:, None]
        within = np.sqrt((w * np.stack(sds) ** 2).sum(axis=0))
        assert (sd >= within - 1e-12).all()
        assert np.allclose(mu, (w * np.stack(mus)).sum(axis=0))

    def test_equal_weights_when_cv_infeasible(self):
        X = np.array([[0.1, 0.2], [0.8, 0.9], [0.4, 0.5]])
        y = np.array([1.0, 2.0, 1.5])
        model = _fit("stack", X, y, seed=0, k_folds=2)
        assert np.allclose(model.weights, [0.5, 0.5])


class TestTransfer:
    def test_strong_prior_tracks_source(self, positive_data):
        X, y = positive_data
        source = _fit("forest", X, y, seed=0)
        model = TransferSurrogate(
            source=source,
            prior_weight=1e9,
            target_factory=lambda: ForestSurrogate.build(
                n_estimators=4, seed=1
            ),
        ).fit(X[:10], np.full(10, 99.0))
        assert np.allclose(model.predict(X), source.predict(X), rtol=1e-6)

    def test_weak_prior_tracks_target(self, positive_data):
        X, y = positive_data
        source = _fit("forest", X, np.full_like(y, 123.0), seed=0)
        model = TransferSurrogate(
            source=source,
            prior_weight=1e-9,
            target_factory=lambda: ForestSurrogate.build(
                n_estimators=8, seed=1
            ),
        ).fit(X, y)
        target_only = ForestSurrogate.build(n_estimators=8, seed=1).fit(X, y)
        assert np.allclose(model.predict(X), target_only.predict(X), rtol=1e-6)

    def test_rejects_nonpositive_prior_weight(self):
        with pytest.raises(ValueError, match="prior_weight"):
            TransferSurrogate(source=ForestSurrogate.build(), prior_weight=0.0)


class TestSerialization:
    def _roundtrip(self, model: Surrogate) -> Surrogate:
        return load_surrogate(io.BytesIO(surrogate_bytes(model)))

    @pytest.mark.parametrize("name", ["forest", "gp", "select", "stack"])
    def test_roundtrip_preserves_predictions(self, positive_data, name):
        X, y = positive_data
        model = _fit(name, X, y, seed=3)
        loaded = self._roundtrip(model)
        assert type(loaded) is type(model)
        assert loaded.kind == name
        mu_a, sd_a = model.predict_with_uncertainty(X)
        mu_b, sd_b = loaded.predict_with_uncertainty(X)
        assert np.allclose(mu_a, mu_b) and np.allclose(sd_a, sd_b)

    def test_transfer_roundtrip(self, positive_data):
        X, y = positive_data
        source = _fit("forest", X, y, seed=0)
        model = _fit("transfer", X[:30], y[:30], seed=1, source=source)
        loaded = self._roundtrip(model)
        assert isinstance(loaded, TransferSurrogate)
        assert loaded.prior_weight == model.prior_weight
        mu_a, sd_a = model.predict_with_uncertainty(X)
        mu_b, sd_b = loaded.predict_with_uncertainty(X)
        assert np.allclose(mu_a, mu_b) and np.allclose(sd_a, sd_b)

    def test_select_roundtrip_keeps_choice_but_cannot_refit(self, positive_data):
        X, y = positive_data
        model = _fit("select", X, y, seed=3)
        loaded = self._roundtrip(model)
        assert loaded.chosen_name == model.chosen_name
        assert loaded.cv_errors == model.cv_errors
        with pytest.raises(RuntimeError, match="cannot refit"):
            loaded.fit(X, y)

    def test_classic_forest_file_loads_as_forest_surrogate(self, positive_data):
        X, y = positive_data
        forest = RandomForestRegressor(n_estimators=6, seed=0).fit(X, y)
        buf = io.BytesIO()
        save_forest(forest, buf)
        buf.seek(0)
        loaded = load_surrogate(buf)
        assert isinstance(loaded, ForestSurrogate)
        assert np.allclose(loaded.predict(X), forest.predict(X))

    def test_forest_envelope_still_readable_by_load_forest(self, positive_data):
        X, y = positive_data
        model = _fit("forest", X, y, seed=0)
        buf = io.BytesIO()
        save_surrogate(model, buf)
        buf.seek(0)
        forest = load_forest(buf)
        assert np.allclose(forest.predict(X), model.predict(X))

    def test_unfitted_models_refuse_to_serialize(self):
        with pytest.raises(ValueError, match="unfitted"):
            surrogate_bytes(GPSurrogate.build(seed=0))
        source = ForestSurrogate.build(n_estimators=2, seed=0)
        with pytest.raises(ValueError, match="unfitted"):
            surrogate_bytes(TransferSurrogate(source=source))


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["gp", "select", "stack"])
    def test_api_run_accepts_surrogate(self, tiny_scale, name):
        result = repro.api.run(
            "mvt", "pwu", seed=0, scale=tiny_scale, surrogate=name
        )
        assert int(result.history.n_train[-1]) == tiny_scale.n_max
        assert np.isfinite(result.history.rmse_mean["0.05"]).all()

    def test_api_run_bit_identical_across_jobs(self, tiny_scale, tmp_path):
        kwargs = dict(seed=0, scale=tiny_scale, trials=2, surrogate="select")
        serial = repro.api.run("mvt", "pwu", jobs=1, **kwargs)
        parallel = repro.api.run(
            "mvt", "pwu", jobs=2, batch_size=1,
            cache_dir=str(tmp_path / "cache"), **kwargs
        )
        assert np.array_equal(serial.history.n_train, parallel.history.n_train)
        assert np.array_equal(serial.history.cc_mean, parallel.history.cc_mean)
        for key in serial.history.rmse_mean:
            assert np.array_equal(
                serial.history.rmse_mean[key], parallel.history.rmse_mean[key]
            )

    def test_unknown_surrogate_fails_fast(self, tiny_scale):
        with pytest.raises(KeyError, match="did you mean"):
            repro.api.run("mvt", "pwu", scale=tiny_scale, surrogate="forrest")

    def test_forest_and_none_produce_identical_runs(self, tiny_scale):
        default = repro.api.run("mvt", "pwu", seed=4, scale=tiny_scale)
        explicit = repro.api.run(
            "mvt", "pwu", seed=4, scale=tiny_scale, surrogate="forest"
        )
        assert np.array_equal(
            default.history.cc_mean, explicit.history.cc_mean
        )
        for key in default.history.rmse_mean:
            assert np.array_equal(
                default.history.rmse_mean[key], explicit.history.rmse_mean[key]
            )


class TestCLI:
    def test_list_shows_surrogates(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "surrogates" in out
        for name in SURROGATE_NAMES:
            assert name in out

    def test_surrogate_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig6", "--surrogate", "gp"])
        assert args.surrogate == "gp"
        assert build_parser().parse_args(["fig6"]).surrogate == "forest"
