"""The incremental suggest/observe entry points of ActiveLearner.

The contract under test: driving a learner externally through
``suggest()``/``observe()`` is *bit-identical* to letting ``run()`` drive
it (same histories, same forests), ``suggest()`` is idempotent until the
matching ``observe()``, and the error paths reject out-of-order or
malformed feedback loudly.
"""

import numpy as np
import pytest

from repro.active import ActiveLearner, LearnerConfig
from repro.sampling import make_strategy
from repro.space import DataPool


def _problem(seed, n_pool=150, n_test=120):
    rng = np.random.default_rng(seed)
    X = rng.random((n_pool + n_test, 4))
    truth = lambda A: 0.5 + A[:, 0] + 0.3 * np.sin(8 * A[:, 1])  # noqa: E731
    return DataPool(X[:n_pool]), X[n_pool:], truth(X[n_pool:]), truth


def _learner(strategy="pwu", seed=7, oracle_seed=123, **cfg_overrides):
    pool, X_test, y_test, truth = _problem(seed)
    oracle_rng = np.random.default_rng(oracle_seed)
    oracle = lambda A: truth(np.atleast_2d(A)) * np.exp(  # noqa: E731
        oracle_rng.normal(0, 0.01, len(np.atleast_2d(A)))
    )
    cfg = dict(n_init=8, n_batch=1, n_max=20, eval_every=4, n_estimators=8)
    cfg.update(cfg_overrides)
    return ActiveLearner(
        pool=pool,
        evaluate=oracle,
        X_test=X_test,
        y_test=y_test,
        strategy=make_strategy(strategy),
        config=LearnerConfig(**cfg),
        seed=np.random.default_rng(seed),
    )


def _drive_incrementally(learner):
    """Reimplement run() externally via the incremental API."""
    while not learner.done:
        learner.suggest()
        _, Xb = learner.pending
        y = learner.evaluate(Xb)
        learner.observe(y)
    return learner.history


class TestEquivalenceWithRun:
    @pytest.mark.parametrize("strategy", ["random", "pwu", "pbus", "maxu"])
    def test_histories_bit_identical(self, strategy):
        a = _learner(strategy)
        b = _learner(strategy)
        ha = a.run()
        hb = _drive_incrementally(b)
        assert len(ha.records) == len(hb.records)
        for ra, rb in zip(ha.records, hb.records):
            assert ra == rb

    def test_models_bit_identical(self):
        a, b = _learner(), _learner()
        a.run()
        _drive_incrementally(b)
        np.testing.assert_array_equal(
            a.model.predict(a.X_test), b.model.predict(b.X_test)
        )

    def test_batched_suggestions_match_batched_run(self):
        a = _learner(n_batch=3)
        b = _learner(n_batch=3)
        a.run()
        _drive_incrementally(b)
        assert a.history.records[-1] == b.history.records[-1]


class TestIncrementalProtocol:
    def test_suggest_is_idempotent(self):
        learner = _learner()
        first = learner.suggest()
        again = learner.suggest()
        np.testing.assert_array_equal(first, again)
        # Idempotent re-suggest consumed no randomness: observing and
        # continuing still matches a straight run.
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb))
        ref = _learner()
        ref_first = ref.suggest()
        np.testing.assert_array_equal(first, ref_first)

    def test_cold_start_size_then_batches(self):
        learner = _learner(n_init=8, n_batch=2)
        cold = learner.suggest()
        assert len(cold) == 8
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb))
        step = learner.suggest()
        assert len(step) == 2

    def test_suggest_n_overrides_and_clamps(self):
        learner = _learner(n_init=8, n_max=12)
        learner.suggest()
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb))
        batch = learner.suggest(3)
        assert len(batch) == 3
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb))
        # 11 labeled, budget 12: even a large n clamps to the remainder.
        batch = learner.suggest(50)
        assert len(batch) == 1

    def test_pending_exposes_indices_and_rows(self):
        learner = _learner()
        idx = learner.suggest()
        indices, X = learner.pending
        np.testing.assert_array_equal(indices, idx)
        assert X.shape == (len(idx), learner.pool.X.shape[1])

    def test_observe_with_matching_indices_ok(self):
        learner = _learner()
        idx = learner.suggest()
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb), indices=idx)
        assert learner.n_labeled == len(idx)

    def test_done_and_n_labeled_track_progress(self):
        learner = _learner(n_init=8, n_max=10)
        assert not learner.done and learner.n_labeled == 0
        _drive_incrementally(learner)
        assert learner.done and learner.n_labeled == 10


class TestIncrementalErrors:
    def test_observe_without_suggest(self):
        learner = _learner()
        with pytest.raises(RuntimeError, match="without a pending suggest"):
            learner.observe(np.zeros(1))

    def test_suggest_after_budget_exhausted(self):
        learner = _learner(n_init=8, n_max=10)
        _drive_incrementally(learner)
        with pytest.raises(RuntimeError, match="budget exhausted"):
            learner.suggest()

    def test_wrong_label_count_rejected(self):
        learner = _learner()
        learner.suggest()
        with pytest.raises(RuntimeError, match="labels for"):
            learner.observe(np.zeros(3))

    def test_mismatched_indices_rejected(self):
        learner = _learner()
        idx = learner.suggest()
        _, Xb = learner.pending
        wrong = np.asarray(idx) + 1
        with pytest.raises(ValueError, match="do not match"):
            learner.observe(learner.evaluate(Xb), indices=wrong)
        # The pending batch survives a rejected observe.
        assert learner.pending is not None

    def test_bad_n_rejected(self):
        learner = _learner()
        learner.suggest()
        _, Xb = learner.pending
        learner.observe(learner.evaluate(Xb))
        with pytest.raises(ValueError, match="n >= 1"):
            learner.suggest(0)
