"""Tests for the PWU ablation variants."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor
from repro.sampling import make_strategy
from repro.sampling.variants import (
    CoefficientOfVariationSampling,
    RankWeightedUncertaintySampling,
)
from repro.space import DataPool


@pytest.fixture
def fitted(rng):
    X = rng.random((120, 3))
    y = 1.0 + X[:, 0] + 0.2 * np.sin(7 * X[:, 1])
    pool = DataPool(X)
    model = RandomForestRegressor(n_estimators=12, seed=0).fit(X[:50], y[:50])
    return pool, model


class TestCV:
    def test_matches_pwu_alpha_zero(self, fitted, rng):
        pool_a, model = fitted
        pool_b = DataPool(pool_a.X.copy())
        a = CoefficientOfVariationSampling().select(model, pool_a, 5, rng)
        b = make_strategy("pwu", alpha=0.0).select(model, pool_b, 5, rng)
        assert set(a.tolist()) == set(b.tolist())

    def test_registry_constructible(self):
        assert make_strategy("cv").name == "cv"


class TestRankWeighted:
    def test_gamma_zero_is_maxu(self, fitted, rng):
        pool_a, model = fitted
        pool_b = DataPool(pool_a.X.copy())
        a = RankWeightedUncertaintySampling(gamma=0.0).select(model, pool_a, 5, rng)
        b = make_strategy("maxu").select(model, pool_b, 5, rng)
        assert set(a.tolist()) == set(b.tolist())

    def test_large_gamma_prefers_fast_predictions(self, fitted, rng):
        pool, model = fitted
        picked = RankWeightedUncertaintySampling(gamma=50.0).select(
            model, pool, 3, rng
        )
        mu = model.predict(pool.X)
        # With an extreme focus exponent, selections sit in the fast head.
        assert (mu[picked] <= np.percentile(mu, 30)).all()

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            RankWeightedUncertaintySampling(gamma=-1.0)

    def test_registry_constructible(self):
        assert make_strategy("pwu-rank").name == "pwu-rank"

    def test_selection_contract(self, fitted, rng):
        pool, model = fitted
        picked = RankWeightedUncertaintySampling().select(model, pool, 6, rng)
        assert len(np.unique(picked)) == 6
        assert all(pool.is_available(i) for i in picked)


class TestCostAwarePWU:
    def test_registry_constructible(self):
        assert make_strategy("pwu-cost").name == "pwu-cost"

    def test_prefers_cheaper_of_equal_pwu_score(self, fitted, rng):
        """Two configs with identical Equation 1 scores: the cheaper one
        (smaller μ) must rank higher under the cost-aware score."""
        from repro.sampling.variants import CostAwarePWUSampling

        class StubModel:
            def predict_with_uncertainty(self, X):
                mu = np.asarray(X)[:, 0]
                sigma = mu ** (1.0 - 0.05)  # PWU score σ/μ^(1-α) == 1 for all
                return mu, sigma

        X = np.array([[0.5, 0.0], [4.0, 0.0]])
        strat = CostAwarePWUSampling(alpha=0.05)
        scores = strat.scores(StubModel(), X)
        assert scores[0] > scores[1]

    def test_alpha_validated(self):
        from repro.sampling.variants import CostAwarePWUSampling

        with pytest.raises(ValueError):
            CostAwarePWUSampling(alpha=2.0)


class TestRunnerIntegration:
    def test_strategy_instance_accepted(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace(
            "mvt",
            RankWeightedUncertaintySampling(gamma=3.0),
            tiny_scale,
            seed=0,
            label="rank3",
        )
        assert trace.strategy == "rank3"
        assert trace.n_train[-1] == tiny_scale.n_max

    def test_config_overrides_applied(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace(
            "mvt",
            "pwu",
            tiny_scale,
            seed=0,
            config_overrides={"n_batch": 4},
        )
        # Batch of 4 from n_init=8 to n_max=20 → 3 batches → fewer records.
        assert trace.n_train[-1] == tiny_scale.n_max
