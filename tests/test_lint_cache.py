"""Incremental lint cache: reuse, invalidation, corruption, parallelism.

All speed claims are asserted through the ``analysis.cache.*`` telemetry
counters rather than wall-clock: a fully-warm run must do *zero* module
passes (every per-file entry hits) and skip the whole-program pass
(project section hits) — strictly less than 1/5 of the cold run's work,
without the flakiness of timing assertions.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, permissive_config
from repro.telemetry import counters

#: A tiny project with an import chain (a → b → c) plus a bystander.
PROJECT = {
    "pkg/__init__.py": "",
    "pkg/c.py": (
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
    "pkg/b.py": "from pkg.c import stamp\n\n\ndef wrap():\n    return stamp()\n",
    "pkg/a.py": "from pkg.b import wrap\n\n\ndef top():\n    return wrap()\n",
    "pkg/d.py": "def lonely():\n    return 0\n",
}


@pytest.fixture()
def project(tmp_path):
    for rel, source in PROJECT.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def _lint(project, cache, **kwargs):
    return lint_paths(
        [project], config=permissive_config(), cache_path=cache, **kwargs
    )


def test_warm_run_reuses_every_file_and_the_project_pass(project, tmp_path):
    cache = tmp_path / "cache.json"
    counters.reset()
    cold = _lint(project, cache)
    assert cold.cache.misses == cold.files_scanned
    assert cold.cache.hits == 0 and not cold.cache.project_hit
    assert counters.value("analysis.cache.misses") == cold.files_scanned

    counters.reset()
    warm = _lint(project, cache)
    # Zero re-lints and no whole-program re-run: far past the 5x bar.
    assert warm.cache.hits == warm.files_scanned
    assert warm.cache.misses == 0 and warm.cache.project_hit
    assert counters.value("analysis.cache.hits") == warm.files_scanned
    assert counters.value("analysis.cache.misses") == 0
    assert counters.value("analysis.cache.project_hits") == 1

    # Cached results replay identically (c.py's DET002 included).
    assert warm.findings == cold.findings
    assert [f.rule for f in warm.findings] == ["DET002"]


def test_editing_a_module_relints_it_and_its_importers_only(project, tmp_path):
    cache = tmp_path / "cache.json"
    _lint(project, cache)

    (project / "pkg" / "c.py").write_text(
        "def stamp():\n    return 0.0\n", encoding="utf-8"
    )
    result = _lint(project, cache)
    # c itself is dirty; a and b import it (transitively); __init__ and
    # d are untouched and must be served from the cache.
    assert result.cache.misses == 3
    assert result.cache.hits == 2
    assert result.cache.invalidated == 2
    assert not result.cache.project_hit  # any edit re-runs the graph pass
    assert result.findings == []  # the DET002 in c.py is gone now


def test_bystander_edit_does_not_invalidate_the_chain(project, tmp_path):
    cache = tmp_path / "cache.json"
    _lint(project, cache)
    (project / "pkg" / "d.py").write_text(
        "def lonely():\n    return 1\n", encoding="utf-8"
    )
    result = _lint(project, cache)
    assert result.cache.misses == 1  # d.py only — nothing imports it
    assert result.cache.hits == 4
    assert result.cache.invalidated == 0


def test_config_change_busts_the_whole_cache(project, tmp_path):
    cache = tmp_path / "cache.json"
    _lint(project, cache)
    config = permissive_config().with_overrides(disable=("DET003",))
    result = lint_paths([project], config=config, cache_path=cache)
    assert result.cache.hits == 0
    assert result.cache.misses == result.files_scanned
    assert not result.cache.project_hit


def test_corrupt_cache_is_ignored_not_fatal(project, tmp_path):
    import json

    cache = tmp_path / "cache.json"
    _lint(project, cache)

    # Structurally corrupt (right schema and ruleset, wrong shapes) and
    # not-even-JSON both start cold without crashing.
    broken = json.loads(cache.read_text(encoding="utf-8"))
    broken["files"] = 42
    for garbage in (json.dumps(broken), "not json at all \x00"):
        cache.write_text(garbage, encoding="utf-8")
        counters.reset()
        result = _lint(project, cache)
        assert [f.rule for f in result.findings] == ["DET002"]
        assert result.cache.hits == 0  # cold start, but no crash
        assert counters.value("analysis.cache.corrupt") == 1

    # ...and the rewritten cache is immediately warm again.
    warm = _lint(project, cache)
    assert warm.cache.hits == warm.files_scanned and warm.cache.project_hit


def test_jobs_output_is_byte_identical_to_serial(project):
    serial = lint_paths([project], config=permissive_config(), jobs=1)
    parallel = lint_paths([project], config=permissive_config(), jobs=4)
    assert parallel.findings == serial.findings
    assert [f.fingerprint for f in parallel.findings] == [
        f.fingerprint for f in serial.findings
    ]
    assert parallel.suppressed == serial.suppressed
    assert parallel.files_scanned == serial.files_scanned


def test_changed_scope_restricts_report_but_keeps_graph(project):
    changed = {(project / "pkg" / "a.py").resolve().as_posix()}
    result = lint_paths(
        [project], config=permissive_config(), changed=changed
    )
    # c.py's DET002 is out of scope; only a.py was linted and reported.
    assert result.findings == []
    assert result.files_linted == 1
    assert result.files_scanned == len(PROJECT)

    changed = {(project / "pkg" / "c.py").resolve().as_posix()}
    result = lint_paths(
        [project], config=permissive_config(), changed=changed
    )
    assert [f.rule for f in result.findings] == ["DET002"]


def test_cache_file_round_trips_suppressions(project, tmp_path):
    (project / "pkg" / "e.py").write_text(
        "import time\n"
        "t = time.time()  # repro: allow[DET002] fixture reason\n",
        encoding="utf-8",
    )
    cache = tmp_path / "cache.json"
    cold = _lint(project, cache)
    warm = _lint(project, cache)
    assert warm.cache.hits == warm.files_scanned
    assert warm.suppressed == cold.suppressed
    assert any(s.rule == "DET002" for _f, s in warm.suppressed)
