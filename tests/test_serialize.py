"""Tests for forest save/load."""

import numpy as np
import pytest

from repro.forest import RandomForestRegressor, load_forest, save_forest


@pytest.fixture
def fitted(regression_data):
    X, y = regression_data
    return RandomForestRegressor(n_estimators=8, seed=0).fit(X, y), X


class TestRoundTrip:
    def test_predictions_identical(self, fitted, tmp_path):
        model, X = fitted
        path = str(tmp_path / "forest.npz")
        save_forest(model, path)
        loaded = load_forest(path)
        assert np.array_equal(loaded.predict(X[:50]), model.predict(X[:50]))

    def test_uncertainty_identical(self, fitted, tmp_path):
        model, X = fitted
        path = str(tmp_path / "forest.npz")
        save_forest(model, path)
        loaded = load_forest(path)
        mu0, s0 = model.predict_with_uncertainty(X[:30])
        mu1, s1 = loaded.predict_with_uncertainty(X[:30])
        assert np.array_equal(mu0, mu1)
        assert np.array_equal(s0, s1)

    def test_uncertainty_mode_preserved(self, regression_data, tmp_path):
        X, y = regression_data
        model = RandomForestRegressor(
            n_estimators=5, seed=0, uncertainty="total_variance"
        ).fit(X, y)
        path = str(tmp_path / "f.npz")
        save_forest(model, path)
        assert load_forest(path).uncertainty == "total_variance"


class TestErrors:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_forest(RandomForestRegressor(), str(tmp_path / "f.npz"))

    def test_version_checked(self, fitted, tmp_path):
        model, _ = fitted
        path = str(tmp_path / "f.npz")
        save_forest(model, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.asarray(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_forest(path)

    def test_loaded_forest_cannot_update(self, fitted, tmp_path, regression_data):
        model, _ = fitted
        X, y = regression_data
        path = str(tmp_path / "f.npz")
        save_forest(model, path)
        loaded = load_forest(path)
        # update() on a data-less forest falls back to fit() semantics —
        # it must not crash, and afterwards it really is refit.
        loaded.update(X[:30], y[:30])
        assert loaded.n_training_samples == 30


class TestTypedEnvelopeErrors:
    """Unreadable files fail with EnvelopeError (a ValueError subclass)
    naming the file and the expected schema — never a raw zipfile or
    KeyError traceback (the bugfix behind DESIGN.md §2j's loaders)."""

    def test_missing_file(self, tmp_path):
        from repro.envelope import EnvelopeError

        with pytest.raises(EnvelopeError, match="file not found"):
            load_forest(str(tmp_path / "ghost.npz"))

    def test_truncated_file_names_path_and_schema(self, fitted, tmp_path):
        from repro.envelope import EnvelopeError

        model, _ = fitted
        path = tmp_path / "f.npz"
        save_forest(model, str(path))
        path.write_bytes(path.read_bytes()[:80])
        with pytest.raises(EnvelopeError) as err:
            load_forest(str(path))
        assert str(path) in str(err.value)
        assert "format_version" in str(err.value)  # the expected schema

    def test_text_file_is_not_a_zipfile_leak(self, tmp_path):
        from repro.envelope import EnvelopeError

        path = tmp_path / "notes.npz"
        path.write_text("definitely not an archive")
        with pytest.raises(EnvelopeError, match="repro forest"):
            load_forest(str(path))

    def test_npz_missing_schema_keys(self, tmp_path):
        from repro.envelope import EnvelopeError

        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, unrelated=np.arange(3))
        with pytest.raises(EnvelopeError, match="format_version"):
            load_forest(str(path))

    def test_surrogate_loader_shares_the_contract(self, tmp_path):
        from repro.envelope import EnvelopeError
        from repro.surrogate import load_surrogate

        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00\x01\x02")
        with pytest.raises(EnvelopeError, match="surrogate"):
            load_surrogate(str(path))

    def test_envelope_error_is_a_value_error(self):
        from repro.envelope import EnvelopeError

        assert issubclass(EnvelopeError, ValueError)
