"""Tests for the six sampling strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RandomForestRegressor
from repro.sampling import (
    STRATEGY_NAMES,
    BestPerfSampling,
    BiasedRandomSampling,
    MaxUncertaintySampling,
    PBUSampling,
    PWUSampling,
    UniformRandomSampling,
    make_strategy,
)
from repro.sampling.base import top_k_by_score
from repro.space import DataPool


@pytest.fixture
def fitted(rng):
    """A pool plus a forest fitted on part of it."""
    X = rng.random((200, 4))
    y = 2.0 + X[:, 0] + 0.5 * np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, 200)
    pool = DataPool(X)
    model = RandomForestRegressor(n_estimators=15, seed=0).fit(X[:80], y[:80])
    return pool, model


class TestTopK:
    def test_selects_highest(self):
        idx = np.array([10, 20, 30, 40])
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_by_score(idx, scores, 2).tolist() == [20, 40]

    def test_deterministic_tiebreak_by_index(self):
        idx = np.array([5, 3, 9])
        scores = np.array([1.0, 1.0, 1.0])
        assert top_k_by_score(idx, scores, 2).tolist() == [5, 3]

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            top_k_by_score(np.array([1]), np.array([np.inf]), 1)

    def test_rejects_k_too_large(self):
        with pytest.raises(ValueError):
            top_k_by_score(np.array([1]), np.array([0.5]), 2)


@pytest.mark.parametrize("name", STRATEGY_NAMES)
class TestCommonContract:
    def test_returns_requested_distinct_available(self, name, fitted, rng):
        pool, model = fitted
        strat = make_strategy(name)
        picked = strat.select(model, pool, 7, rng)
        assert len(picked) == 7
        assert len(np.unique(picked)) == 7
        assert all(pool.is_available(i) for i in picked)

    def test_rejects_zero_batch(self, name, fitted, rng):
        pool, model = fitted
        with pytest.raises(ValueError):
            make_strategy(name).select(model, pool, 0, rng)

    def test_rejects_overdraw(self, name, fitted, rng):
        pool, model = fitted
        pool.take(pool.available_indices()[:-2])
        with pytest.raises(ValueError, match="remain"):
            make_strategy(name).select(model, pool, 3, rng)

    def test_never_returns_taken_index(self, name, fitted, rng):
        pool, model = fitted
        taken = pool.available_indices()[:150]
        pool.take(taken)
        picked = make_strategy(name).select(model, pool, 5, rng)
        assert set(picked.tolist()).isdisjoint(set(taken.tolist()))


class TestUniformRandom:
    def test_is_model_free(self):
        assert not UniformRandomSampling().requires_model

    def test_works_without_model(self, fitted, rng):
        pool, _ = fitted
        picked = UniformRandomSampling().select(None, pool, 4, rng)
        assert len(picked) == 4

    def test_distribution_is_uniformish(self, fitted):
        pool, _ = fitted
        counts = np.zeros(pool.n_total)
        for s in range(300):
            picked = UniformRandomSampling().select(
                None, pool, 5, np.random.default_rng(s)
            )
            counts[picked] += 1
        # Every index picked at least once over 1500 draws from 200 slots.
        assert (counts > 0).mean() > 0.95


class TestBestPerf:
    def test_picks_smallest_predicted_time(self, fitted, rng):
        pool, model = fitted
        picked = BestPerfSampling().select(model, pool, 5, rng)
        mu = model.predict(pool.X)
        best5 = np.sort(mu)[:5]
        assert np.allclose(np.sort(mu[picked]), best5)


class TestMaxU:
    def test_picks_largest_sigma(self, fitted, rng):
        pool, model = fitted
        picked = MaxUncertaintySampling().select(model, pool, 5, rng)
        _, sigma = model.predict_with_uncertainty(pool.X)
        assert np.allclose(np.sort(sigma[picked])[::-1], np.sort(sigma)[::-1][:5])


class TestBRS:
    def test_selection_within_top_fraction(self, fitted, rng):
        pool, model = fitted
        strat = BiasedRandomSampling(top_fraction=0.10)
        picked = strat.select(model, pool, 5, rng)
        mu = model.predict(pool.X)
        cutoff = np.sort(mu)[int(np.ceil(0.10 * pool.n_available)) - 1]
        assert (mu[picked] <= cutoff + 1e-12).all()

    def test_random_within_candidates(self, fitted):
        pool, model = fitted
        strat = BiasedRandomSampling(top_fraction=0.5)
        a = strat.select(model, pool, 5, np.random.default_rng(1))
        b = strat.select(model, pool, 5, np.random.default_rng(2))
        assert not np.array_equal(np.sort(a), np.sort(b))

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            BiasedRandomSampling(top_fraction=0.0)
        with pytest.raises(ValueError):
            BiasedRandomSampling(top_fraction=1.5)


class TestPBUS:
    def test_performance_filter_before_uncertainty(self, fitted, rng):
        """Selected samples must come from the predicted-fast candidates."""
        pool, model = fitted
        strat = PBUSampling(candidate_fraction=0.10)
        picked = strat.select(model, pool, 5, rng)
        mu, _ = model.predict_with_uncertainty(pool.X)
        n_cand = int(np.ceil(0.10 * pool.n_available))
        cutoff = np.sort(mu)[n_cand - 1]
        assert (mu[picked] <= cutoff + 1e-12).all()

    def test_max_sigma_among_candidates(self, fitted, rng):
        pool, model = fitted
        strat = PBUSampling(candidate_fraction=0.25)
        picked = strat.select(model, pool, 3, rng)
        mu, sigma = model.predict_with_uncertainty(pool.X)
        n_cand = int(np.ceil(0.25 * pool.n_available))
        candidates = np.argsort(mu, kind="stable")[:n_cand]
        expected = candidates[np.argsort(-sigma[candidates], kind="stable")[:3]]
        assert set(picked.tolist()) == set(
            pool.available_indices()[expected].tolist()
        )

    def test_candidate_set_grows_to_batch(self, fitted, rng):
        pool, model = fitted
        strat = PBUSampling(candidate_fraction=0.001)  # fewer than the batch
        picked = strat.select(model, pool, 10, rng)
        assert len(picked) == 10

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            PBUSampling(candidate_fraction=-0.1)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in STRATEGY_NAMES:
            assert make_strategy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_strategy("thompson")

    def test_pwu_alpha_propagates(self):
        assert make_strategy("pwu", alpha=0.01).alpha == 0.01


@given(seed=st.integers(0, 999), batch=st.integers(1, 10))
@settings(max_examples=20, deadline=None)
def test_property_strategies_partition_cleanly(seed, batch):
    """Repeated selection without replacement eventually drains the pool."""
    rng = np.random.default_rng(seed)
    X = rng.random((40, 3))
    y = X[:, 0] + 1.0
    pool = DataPool(X)
    model = RandomForestRegressor(n_estimators=5, seed=0).fit(X[:15], y[:15])
    strat = PWUSampling(alpha=0.05)
    seen: set[int] = set()
    while pool.n_available >= batch:
        picked = strat.select(model, pool, batch, rng)
        pool.take(picked)
        assert seen.isdisjoint(picked.tolist())
        seen.update(picked.tolist())
    assert len(seen) == 40 - pool.n_available
