"""Tests for machine models and the cache-latency staircase."""

import numpy as np
import pytest

from repro.machine import (
    PLATFORM_A,
    PLATFORM_B,
    CacheLevel,
    MachineModel,
    NetworkModel,
    average_access_latency,
    miss_fraction,
    platform_table,
)


class TestCacheLevel:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0, 4.0)
        with pytest.raises(ValueError):
            CacheLevel("L1", 1024, -1.0)
        with pytest.raises(ValueError):
            CacheLevel("L1", 1024, 4.0, line_bytes=0)


class TestNetworkModel:
    def test_message_time_is_alpha_beta(self):
        net = NetworkModel(alpha_s=1e-6, beta_s_per_byte=1e-9)
        assert net.message_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_zero_byte_message_costs_alpha(self):
        net = NetworkModel(alpha_s=2e-6, beta_s_per_byte=1e-9)
        assert net.message_time(0) == pytest.approx(2e-6)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(alpha_s=-1.0, beta_s_per_byte=0.0)


class TestMachineModel:
    def test_platforms_valid(self):
        # Construction itself runs the validation.
        assert PLATFORM_A.cores == 24
        assert PLATFORM_B.cores == 28
        assert PLATFORM_B.network is not None
        assert PLATFORM_A.network is None

    def test_cache_order_enforced(self):
        with pytest.raises(ValueError, match="ordered"):
            MachineModel(
                name="bad",
                cores=1,
                frequency_hz=1e9,
                caches=(
                    CacheLevel("L2", 1 << 18, 12.0),
                    CacheLevel("L1", 1 << 15, 4.0),
                ),
                memory_latency_cycles=100.0,
                memory_bandwidth_bytes_s=1e9,
                memory_bytes=1 << 30,
            )

    def test_memory_latency_must_exceed_llc(self):
        with pytest.raises(ValueError, match="memory latency"):
            MachineModel(
                name="bad",
                cores=1,
                frequency_hz=1e9,
                caches=(CacheLevel("L1", 1 << 15, 40.0),),
                memory_latency_cycles=10.0,
                memory_bandwidth_bytes_s=1e9,
                memory_bytes=1 << 30,
            )

    def test_cycles_to_seconds(self):
        assert PLATFORM_A.cycles_to_seconds(2.5e9) == pytest.approx(1.0)

    def test_peak_flops_positive(self):
        assert PLATFORM_A.peak_flops() > 1e11  # a Haswell node is O(100 GF)


class TestMissFraction:
    def test_small_working_set_hits(self):
        f = miss_fraction(np.array([1024.0]), 32 * 1024)
        assert f[0] < 0.01

    def test_huge_working_set_misses(self):
        f = miss_fraction(np.array([1e9]), 32 * 1024)
        assert f[0] > 0.99

    def test_monotone_in_working_set(self):
        ws = np.logspace(2, 9, 50)
        f = miss_fraction(ws, 256 * 1024)
        assert (np.diff(f) >= 0).all()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            miss_fraction(np.array([0.0]), 1024)
        with pytest.raises(ValueError):
            miss_fraction(np.array([10.0]), 0)


class TestAverageAccessLatency:
    def test_l1_resident_near_l1_latency(self):
        lat = average_access_latency(PLATFORM_A, np.array([4096.0]))
        assert lat[0] == pytest.approx(PLATFORM_A.caches[0].latency_cycles, rel=0.3)

    def test_memory_resident_near_memory_latency(self):
        lat = average_access_latency(PLATFORM_A, np.array([4e9]))
        assert lat[0] > 0.8 * PLATFORM_A.memory_latency_cycles

    def test_staircase_is_monotone(self):
        ws = np.logspace(2, 10, 100)
        lat = average_access_latency(PLATFORM_A, ws)
        assert (np.diff(lat) >= -1e-9).all()

    def test_l2_resident_between_l1_and_l3(self):
        ws = np.array([128.0 * 1024])  # fits L2 region (256KB), exceeds L1
        lat = average_access_latency(PLATFORM_A, ws)[0]
        assert PLATFORM_A.caches[0].latency_cycles < lat
        assert lat < PLATFORM_A.caches[2].latency_cycles


class TestPlatformTable:
    def test_table_iv_contents(self):
        text = platform_table()
        for token in ("E5-2680 v3", "E5-2680 v4", "24", "28", "100Gbps OPA"):
            assert token in text
