"""Distilled surrogate workloads: round trip, determinism, typed failures.

The envelope contract under test (DESIGN.md §2j): a distilled workload is
one ``.npz`` holding a surrogate envelope plus the ``workload_meta`` JSON
blob (space, noise, provenance).  The frozen surface must be bit-stable —
across save/load, across processes, and across ``jobs`` — and anything
unreadable must fail with a typed :class:`~repro.envelope.EnvelopeError`,
never a raw ``zipfile``/``KeyError`` traceback.
"""

import io

import numpy as np
import pytest

import repro.api
from repro.envelope import EnvelopeError
from repro.noise import MeasurementProtocol
from repro.space import space_from_dict, space_to_dict
from repro.workloads import (
    SurrogateBenchmark,
    distill_workload,
    get_benchmark,
    load_distilled,
    save_distilled,
)


@pytest.fixture(scope="module")
def distilled():
    return distill_workload(
        get_benchmark("atax"), surrogate="forest", budget=150, seed=11,
        n_estimators=6,
    )


@pytest.fixture(scope="module")
def envelope_path(distilled, tmp_path_factory):
    path = tmp_path_factory.mktemp("distill") / "atax.npz"
    save_distilled(distilled, path)
    return path


class TestRoundTrip:
    def test_surface_is_bit_identical_after_reload(self, distilled, envelope_path):
        loaded = load_distilled(envelope_path)
        X = distilled.space.sample_encoded(np.random.default_rng(0), 64)
        np.testing.assert_array_equal(
            distilled.true_times_encoded(X), loaded.true_times_encoded(X)
        )

    def test_space_and_noise_survive(self, distilled, envelope_path):
        loaded = load_distilled(envelope_path)
        assert loaded.name == distilled.name == "atax-forest"
        assert loaded.protocol == distilled.protocol
        source = get_benchmark("atax").space
        assert [p.name for p in loaded.space.parameters] == [
            p.name for p in source.parameters
        ]
        assert loaded.space.size() == source.size()

    def test_distillation_is_deterministic(self, distilled):
        again = distill_workload(
            get_benchmark("atax"), surrogate="forest", budget=150, seed=11,
            n_estimators=6,
        )
        a, b = io.BytesIO(), io.BytesIO()
        save_distilled(distilled, a)
        save_distilled(again, b)
        assert a.getvalue() == b.getvalue()

    def test_resave_after_load_is_byte_stable(self, envelope_path):
        buf = io.BytesIO()
        save_distilled(load_distilled(envelope_path), buf)
        assert buf.getvalue() == envelope_path.read_bytes()

    def test_provenance_stamped(self, distilled):
        prov = distilled.provenance
        assert prov["source"] == "atax"
        assert prov["budget"] == 150
        assert prov["noise_mode"] == "protocol"
        assert prov["fit_rmse_log"] >= 0.0
        assert prov["source_protocol"]["n_repeats"] == 35

    def test_registry_prefix_resolves_the_file(self, envelope_path):
        b = get_benchmark(f"surrogate:{envelope_path}")
        assert isinstance(b, SurrogateBenchmark)
        assert b.name == "atax-forest"

    def test_plain_surrogate_loader_reads_the_superset(self, envelope_path):
        from repro.forest.serialize import load_forest
        from repro.surrogate import load_surrogate

        model = load_surrogate(str(envelope_path))
        assert model.kind == "forest"
        forest = load_forest(str(envelope_path))
        X = np.zeros((3, forest.trees_[0].n_features_))
        assert np.isfinite(forest.predict(X)).all()


class TestNoiseModes:
    def test_protocol_mode_scales_sigma_by_sqrt_repeats(self, distilled):
        source = get_benchmark("atax").protocol
        assert distilled.protocol.n_repeats == 1
        assert distilled.protocol.outlier_prob == 0.0
        assert distilled.protocol.noise_sigma == pytest.approx(
            source.noise_sigma / np.sqrt(source.n_repeats)
        )

    def test_none_mode_is_exact(self):
        d = distill_workload(
            get_benchmark("atax"), budget=80, seed=1, n_estimators=4, noise="none"
        )
        assert d.protocol.is_exact
        X = d.space.sample_encoded(np.random.default_rng(2), 16)
        np.testing.assert_array_equal(
            d.evaluate_batch(X, np.random.default_rng(0)),
            d.true_times_encoded(X),
        )

    def test_exact_mode_copies_the_source_protocol(self):
        d = distill_workload(
            get_benchmark("atax"), budget=80, seed=1, n_estimators=4, noise="exact"
        )
        assert d.protocol == get_benchmark("atax").protocol

    def test_residual_mode_fits_campaign_residuals(self):
        d = distill_workload(
            get_benchmark("atax"), budget=80, seed=1, n_estimators=4,
            noise="residual",
        )
        assert d.protocol.n_repeats == 1
        assert 0.0 <= d.protocol.noise_sigma < 2.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="noise mode"):
            distill_workload(get_benchmark("atax"), budget=80, noise="psychic")


class TestTypedFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EnvelopeError, match="file not found"):
            load_distilled(tmp_path / "ghost.npz")

    def test_truncated_archive(self, tmp_path, envelope_path):
        stump = tmp_path / "cut.npz"
        stump.write_bytes(envelope_path.read_bytes()[:100])
        with pytest.raises(EnvelopeError, match="distilled-workload"):
            load_distilled(stump)

    def test_garbage_bytes(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this was never an archive")
        with pytest.raises(EnvelopeError, match="distilled-workload"):
            load_distilled(junk)

    def test_plain_surrogate_envelope_is_not_a_workload(self, tmp_path, distilled):
        from repro.surrogate import save_surrogate

        path = tmp_path / "bare.npz"
        save_surrogate(distilled.model, path)
        with pytest.raises(EnvelopeError, match="workload_meta"):
            load_distilled(path)

    def test_corrupt_metadata(self, tmp_path, envelope_path):
        data = dict(np.load(envelope_path))
        data["workload_meta"] = np.asarray('{"name": "x"}')  # no space/noise
        bad = tmp_path / "nospace.npz"
        np.savez_compressed(bad, **data)
        with pytest.raises(EnvelopeError, match="corrupt workload_meta"):
            load_distilled(bad)

    def test_future_schema_rejected(self, tmp_path, envelope_path):
        data = dict(np.load(envelope_path))
        data["workload_schema"] = np.asarray(99)
        future = tmp_path / "future.npz"
        np.savez_compressed(future, **data)
        with pytest.raises(EnvelopeError, match="workload schema 99"):
            load_distilled(future)

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            distill_workload(get_benchmark("atax"), budget=1)


class TestSpaceSerialization:
    def test_every_benchmark_space_round_trips(self):
        for name in ("atax", "mm", "kripke", "hypre", "tensor"):
            space = get_benchmark(name).space
            rebuilt = space_from_dict(space_to_dict(space))
            assert [p.name for p in rebuilt.parameters] == [
                p.name for p in space.parameters
            ]
            X = space.sample_encoded(np.random.default_rng(1), 32)
            assert rebuilt.decode(X) == space.decode(X)
            np.testing.assert_array_equal(rebuilt.encode(space.decode(X)), X)

    def test_constrained_space_records_dropped_names(self):
        b = get_benchmark("tensor")
        if not b.space.constraints:
            pytest.skip("tensor space is unconstrained in this build")
        d = distill_workload(b, budget=80, seed=0, n_estimators=4)
        assert d.provenance["constraints_dropped"] == [
            c.name for c in b.space.constraints
        ]
        assert not d.space.constraints


class TestEndToEnd:
    def test_api_run_is_deterministic_and_jobs_invariant(self, envelope_path):
        name = f"surrogate:{envelope_path}"
        kwargs = dict(scale="smoke", seed=3, trials=2)
        serial = repro.api.run(name, "pwu", jobs=1, **kwargs)
        again = repro.api.run(name, "pwu", jobs=1, **kwargs)
        fanned = repro.api.run(name, "pwu", jobs=2, **kwargs)
        assert serial.history.to_dict() == again.history.to_dict()
        assert serial.history.to_dict() == fanned.history.to_dict()

    def test_compare_accepts_distilled_workloads(self, envelope_path):
        result = repro.api.compare(
            f"surrogate:{envelope_path}", ("random", "pwu"),
            scale="smoke", seed=0, trials=1,
        )
        assert set(result.metrics) == {"random", "pwu"}

    def test_api_distill_facade_writes_the_envelope(self, tmp_path):
        out = tmp_path / "facade.npz"
        bench = repro.api.distill(
            "kernel:atax", budget=80, n_estimators=4, out=str(out)
        )
        assert out.exists()
        loaded = load_distilled(out)
        assert loaded.name == bench.name == "atax-forest"
