"""Tests for the model-portability extension."""

import numpy as np
import pytest

from repro.active import LearnerConfig
from repro.forest import RandomForestRegressor
from repro.kernels import KERNEL_DESCRIPTORS, SpaptKernel
from repro.machine import PLATFORM_A, PLATFORM_B
from repro.space import DataPool
from repro.transfer import (
    run_transfer_experiment,
    surface_correlation,
    transfer_cold_start,
)
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def atax_a():
    return SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_A)


@pytest.fixture(scope="module")
def atax_b():
    return SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_B)


class TestSurfaceCorrelation:
    def test_same_benchmark_perfectly_correlated(self, atax_a):
        rho = surface_correlation(atax_a, atax_a, n_probe=200, seed=0)
        assert rho == pytest.approx(1.0)

    def test_cross_platform_strongly_related(self, atax_a, atax_b):
        """Same kernel on A vs B: different machines, same structure."""
        rho = surface_correlation(atax_a, atax_b, n_probe=300, seed=0)
        assert rho > 0.8

    def test_mismatched_spaces_rejected(self, atax_a):
        with pytest.raises(ValueError, match="identically structured"):
            surface_correlation(atax_a, get_benchmark("adi"))

    def test_deterministic(self, atax_a, atax_b):
        a = surface_correlation(atax_a, atax_b, n_probe=100, seed=3)
        b = surface_correlation(atax_a, atax_b, n_probe=100, seed=3)
        assert a == b


class TestTransferColdStart:
    @pytest.fixture
    def setup(self, rng):
        X = rng.random((200, 3))
        y = 1.0 + X[:, 0]
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X[:80], y[:80])
        return DataPool(X), model

    def test_returns_requested_count_distinct(self, setup, rng):
        pool, model = setup
        idx = transfer_cold_start(model, pool, 10, rng)
        assert len(idx) == 10
        assert len(np.unique(idx)) == 10

    def test_exploit_half_is_predicted_fast(self, setup, rng):
        pool, model = setup
        idx = transfer_cold_start(model, pool, 10, rng, exploit_fraction=0.5)
        mu = model.predict(pool.X)
        fast5 = set(np.argsort(mu, kind="stable")[:5].tolist())
        assert fast5 <= set(idx.tolist())

    def test_pure_random_when_fraction_zero(self, setup):
        pool, model = setup
        a = transfer_cold_start(model, pool, 8, np.random.default_rng(1), 0.0)
        b = transfer_cold_start(model, pool, 8, np.random.default_rng(2), 0.0)
        assert set(a.tolist()) != set(b.tolist())

    def test_validation(self, setup, rng):
        pool, model = setup
        with pytest.raises(ValueError, match="exploit_fraction"):
            transfer_cold_start(model, pool, 5, rng, exploit_fraction=1.5)
        with pytest.raises(ValueError, match="exceeds"):
            transfer_cold_start(model, pool, 999, rng)


@pytest.mark.slow
class TestEndToEnd:
    def test_cross_platform_transfer_runs(self, atax_a, atax_b, rng):
        X = atax_b.space.sample_unique_encoded(rng, 350)
        pool, X_test = DataPool(X[:200]), X[200:]
        y_test = atax_b.measure_encoded(X_test, rng)
        result = run_transfer_experiment(
            source=atax_a,
            target=atax_b,
            pool=pool,
            X_test=X_test,
            y_test=y_test,
            config=LearnerConfig(
                n_init=10, n_max=30, eval_every=10, n_estimators=10, alphas=(0.05,)
            ),
            n_source_samples=120,
            seed=0,
        )
        assert result.surface_rho > 0.8
        assert result.scratch.records[-1].n_train == 30
        assert result.transferred.records[-1].n_train == 30
        ratios = result.improvement("0.05")
        assert np.isfinite(ratios).all()
