"""Tests for the parallel execution engine (repro.engine)."""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.active import IterationRecord, LearningHistory
from repro.engine import (
    EngineConfig,
    ResultStore,
    TrialJob,
    current_engine,
    engine_from_env,
    execute_job,
    run_jobs,
    trial_jobs,
    use_engine,
)
from repro.experiments import runner
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import comparison_traces, strategy_trace
from repro.sampling.pwu import PWUSampling


@pytest.fixture
def two_trial_scale() -> ExperimentScale:
    """Tiny scale with two trials, so scheduling has something to schedule."""
    return ExperimentScale(
        name="tiny2",
        pool_size=150,
        test_size=120,
        n_init=8,
        n_batch=1,
        n_max=16,
        n_trials=2,
        eval_every=4,
        n_estimators=8,
    )


def _quiet(jobs: int = 1, cache_dir=None) -> EngineConfig:
    return EngineConfig(jobs=jobs, cache_dir=cache_dir, progress=False)


class TestJobKeys:
    def test_deterministic_and_distinct(self, two_trial_scale):
        j0, j1 = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        assert j0.key() == trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[0].key()
        # Every varying spec field must vary the key.
        assert j0.key() != j1.key()  # trial index
        others = [
            trial_jobs("atax", "pwu", two_trial_scale, seed=0)[0],
            trial_jobs("mvt", "pbus", two_trial_scale, seed=0)[0],
            trial_jobs("mvt", "pwu", two_trial_scale, seed=1)[0],
            trial_jobs("mvt", "pwu", two_trial_scale, seed=0, alpha=0.1)[0],
            trial_jobs(
                "mvt", "pwu", two_trial_scale, seed=0,
                config_overrides={"retrain": "partial"},
            )[0],
        ]
        keys = {j0.key(), *(j.key() for j in others)}
        assert len(keys) == len(others) + 1

    def test_key_ignores_scale_name(self, two_trial_scale):
        from dataclasses import replace

        renamed = replace(two_trial_scale, name="renamed")
        a = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[0]
        b = trial_jobs("mvt", "pwu", renamed, seed=0)[0]
        assert a.key() == b.key()

    def test_overrides_order_independent(self, two_trial_scale):
        a = trial_jobs(
            "mvt", "pwu", two_trial_scale, seed=0,
            config_overrides={"retrain": "partial", "refresh_fraction": 0.5},
        )[0]
        b = trial_jobs(
            "mvt", "pwu", two_trial_scale, seed=0,
            config_overrides={"refresh_fraction": 0.5, "retrain": "partial"},
        )[0]
        assert a.key() == b.key()

    def test_instance_strategy_keyed_by_params(self, two_trial_scale):
        a = trial_jobs("mvt", PWUSampling(alpha=0.3), two_trial_scale)[0]
        b = trial_jobs("mvt", PWUSampling(alpha=0.3), two_trial_scale)[0]
        c = trial_jobs("mvt", PWUSampling(alpha=0.4), two_trial_scale)[0]
        assert a.key() == b.key()
        assert a.key() != c.key()
        # and distinct from the name-constructed form
        d = trial_jobs("mvt", "pwu", two_trial_scale)[0]
        assert a.key() != d.key()

    def test_pickle_roundtrip_preserves_key(self, two_trial_scale):
        job = trial_jobs("mvt", PWUSampling(alpha=0.3), two_trial_scale)[0]
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key() == job.key()
        assert clone.spec() == job.spec()

    def test_key_stable_across_processes(self, two_trial_scale):
        """The content address must not depend on interpreter state."""
        job = trial_jobs("mvt", "pwu", two_trial_scale, seed=7)[0]
        src = Path(repro.__file__).resolve().parent.parent
        code = (
            "from repro.engine import trial_jobs\n"
            "from repro.experiments.config import ExperimentScale\n"
            "s = ExperimentScale(name='tiny2', pool_size=150, test_size=120,"
            " n_init=8, n_batch=1, n_max=16, n_trials=2, eval_every=4,"
            " n_estimators=8)\n"
            "print(trial_jobs('mvt', 'pwu', s, seed=7)[0].key())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == job.key()

    def test_rng_derives_from_key(self, two_trial_scale):
        j0, j1 = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        a = j0.rng().integers(0, 2**31, size=8)
        b = j0.rng().integers(0, 2**31, size=8)
        c = j1.rng().integers(0, 2**31, size=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestHistoryRoundTrip:
    def _history(self) -> LearningHistory:
        h = LearningHistory()
        h.append(
            IterationRecord(
                n_train=8, cumulative_cost=1.25, rmse={"0.01": 0.5, "0.05": 0.4},
                selected=(3, 1, 4), selected_mu=(), selected_sigma=(),
            )
        )
        h.append(
            IterationRecord(
                n_train=12, cumulative_cost=2.5, rmse={"0.01": 0.3, "0.05": 0.2},
                selected=(9, 2), selected_mu=(0.7, 0.9), selected_sigma=(0.1, 0.2),
            )
        )
        return h

    def test_roundtrip_is_lossless(self):
        h = self._history()
        clone = LearningHistory.from_dict(h.to_dict())
        assert clone.records == h.records

    def test_roundtrip_through_json(self):
        h = self._history()
        clone = LearningHistory.from_dict(json.loads(json.dumps(h.to_dict())))
        assert clone.records == h.records

    def test_legacy_summary_form(self):
        legacy = {
            "n_train": [8, 12],
            "cumulative_cost": [1.0, 2.0],
            "rmse": {"0.05": [0.5, 0.25]},
        }
        h = LearningHistory.from_dict(legacy)
        assert h.n_train.tolist() == [8, 12]
        assert h.rmse_series("0.05").tolist() == [0.5, 0.25]
        assert h.records[0].selected == ()

    def test_executed_trace_roundtrips(self, two_trial_scale):
        job = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[0]
        history = execute_job(job)
        clone = LearningHistory.from_dict(json.loads(json.dumps(history.to_dict())))
        assert clone.records == history.records

    def test_averaged_trace_roundtrips(self, two_trial_scale):
        """Store artifacts and dump_json share one schema end to end."""
        from repro.experiments.aggregate import AveragedTrace

        trace = strategy_trace("mvt", "pwu", two_trial_scale, seed=0, engine=_quiet())
        clone = AveragedTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert clone.strategy == trace.strategy
        assert clone.n_trials == trace.n_trials
        assert np.array_equal(clone.n_train, trace.n_train)
        assert np.array_equal(clone.cc_mean, trace.cc_mean)
        assert np.array_equal(clone.cc_std, trace.cc_std)
        for k in trace.rmse_mean:
            assert np.array_equal(clone.rmse_mean[k], trace.rmse_mean[k])
            assert np.array_equal(clone.rmse_std[k], trace.rmse_std[k])


class TestResultStore:
    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get("f" * 64) is None

    def test_put_get_roundtrip(self, tmp_path, two_trial_scale):
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        history = execute_job(job)
        store = ResultStore(tmp_path)
        path = store.put(job, history)
        assert path.exists()
        assert job.key() in store
        assert len(store) == 1 and store.keys() == [job.key()]
        loaded = store.get(job.key())
        assert loaded is not None and loaded.records == history.records

    def test_corrupt_artifact_is_a_miss(self, tmp_path, two_trial_scale):
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store = ResultStore(tmp_path)
        store.put(job, execute_job(job))
        store.journal_path.write_text("{truncated", encoding="utf-8")
        assert ResultStore(tmp_path).get(job.key()) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, two_trial_scale):
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store = ResultStore(tmp_path)
        path = store.put(job, execute_job(job))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["store_schema"] = -1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(job.key()) is None


class TestEngineExecution:
    def test_parallel_bit_identical_to_serial(self, two_trial_scale):
        with use_engine(_quiet(jobs=1)):
            serial = comparison_traces("mvt", ("random", "pwu"), two_trial_scale, seed=0)
        with use_engine(_quiet(jobs=2)):
            parallel = comparison_traces("mvt", ("random", "pwu"), two_trial_scale, seed=0)
        for s in serial:
            assert np.array_equal(serial[s].cc_mean, parallel[s].cc_mean)
            assert np.array_equal(serial[s].cc_std, parallel[s].cc_std)
            for k in serial[s].rmse_mean:
                assert np.array_equal(serial[s].rmse_mean[k], parallel[s].rmse_mean[k])
                assert np.array_equal(serial[s].rmse_std[k], parallel[s].rmse_std[k])

    def test_resume_reuses_cached_trials(self, tmp_path, two_trial_scale):
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        cfg = _quiet(cache_dir=str(tmp_path))
        first, stats1 = run_jobs(jobs, config=cfg)
        assert (stats1.executed, stats1.cached) == (len(jobs), 0)
        second, stats2 = run_jobs(jobs, config=cfg)
        assert (stats2.executed, stats2.cached) == (0, len(jobs))
        for key in first:
            assert second[key].cached and not first[key].cached
            assert second[key].history.records == first[key].history.records

    def test_partial_completion_resumes(self, tmp_path, two_trial_scale):
        """A killed run's surviving artifacts are reused, the rest executed."""
        cfg = _quiet(cache_dir=str(tmp_path))
        done = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        run_jobs(done, config=cfg)
        both = done + trial_jobs("mvt", "random", two_trial_scale, seed=0)
        _, stats = run_jobs(both, config=cfg)
        assert stats.cached == len(done)
        assert stats.executed == len(both) - len(done)

    def test_cached_trace_matches_fresh_execution(self, tmp_path, two_trial_scale):
        """Resume must not change results: cached == freshly computed."""
        jobs = trial_jobs("mvt", "pbus", two_trial_scale, seed=0)
        fresh, _ = run_jobs(jobs, config=_quiet())
        run_jobs(jobs, config=_quiet(cache_dir=str(tmp_path)))
        cached, stats = run_jobs(jobs, config=_quiet(cache_dir=str(tmp_path)))
        assert stats.executed == 0
        for key in fresh:
            assert cached[key].history.records == fresh[key].history.records

    def test_duplicate_jobs_execute_once(self, two_trial_scale):
        jobs = trial_jobs("mvt", "random", two_trial_scale, seed=0)
        results, stats = run_jobs(jobs + jobs, config=_quiet())
        assert stats.total == len(jobs)
        assert stats.executed == len(jobs)
        assert set(results) == {j.key() for j in jobs}

    def test_split_prepared_once_per_comparison(self, monkeypatch, two_trial_scale):
        """The pool/test split (and y_test measurement) is hoisted: one
        prepare_data call serves every strategy and trial of a benchmark."""
        calls = []
        original = runner.prepare_data
        monkeypatch.setattr(
            runner,
            "prepare_data",
            lambda *a, **k: (calls.append(1), original(*a, **k))[1],
        )
        with use_engine(_quiet(jobs=1)):
            comparison_traces(
                "mvt", ("random", "bestperf", "pwu"), two_trial_scale, seed=321
            )
        assert len(calls) == 1

    def test_run_strategy_engine_override(self, tmp_path, two_trial_scale):
        trace = strategy_trace(
            "mvt", "pwu", two_trial_scale, seed=0,
            engine=_quiet(cache_dir=str(tmp_path)),
        )
        assert trace.n_trials == two_trial_scale.n_trials
        assert len(ResultStore(tmp_path)) == two_trial_scale.n_trials

    def test_engine_matches_legacy_shape(self, tiny_scale):
        """The engine-backed runner preserves the protocol contract."""
        trace = strategy_trace("mvt", "pwu", tiny_scale, seed=0, engine=_quiet())
        assert trace.strategy == "pwu"
        assert trace.n_train[-1] == tiny_scale.n_max
        assert set(trace.rmse_mean) == {"0.01", "0.05", "0.1"}


class TestContext:
    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        cfg = engine_from_env()
        assert cfg == EngineConfig(jobs=3, cache_dir="/tmp/somewhere", progress=False)

    def test_env_defaults(self, monkeypatch):
        for var in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_PROGRESS"):
            monkeypatch.delenv(var, raising=False)
        assert engine_from_env() == EngineConfig()

    def test_env_progress_force(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "force")
        cfg = engine_from_env()
        assert cfg.progress and cfg.progress_force

    def test_use_engine_scoping(self):
        inner = _quiet(jobs=2)
        with use_engine(inner):
            assert current_engine() is inner
        assert current_engine() is not inner

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            EngineConfig(jobs=0)


class TestProgressTelemetry:
    def test_counters_and_summary(self, capsys):
        from repro.engine import ProgressReporter

        rep = ProgressReporter(total=3, enabled=True, min_interval=0.0)
        rep.job_cached("a")
        rep.job_started("b")
        rep.job_finished("b")
        rep.job_started("c")
        rep.job_finished("c")
        rep.close()
        assert (rep.done, rep.cached, rep.executed) == (3, 1, 2)
        err = capsys.readouterr().err
        assert "cache hits 1" in err and "executed 2" in err

    def test_disabled_reporter_is_silent(self, capsys):
        from repro.engine import ProgressReporter

        rep = ProgressReporter(total=1, enabled=False)
        rep.job_started()
        rep.job_finished()
        rep.close()
        assert capsys.readouterr().err == ""

    def test_non_tty_suppresses_intermediate_lines(self):
        """Daemon/CI logs get the summary only, not per-update spam."""
        import io

        from repro.engine import ProgressReporter

        stream = io.StringIO()  # not a TTY
        rep = ProgressReporter(total=2, stream=stream, min_interval=0.0)
        rep.job_started("a")
        rep.job_finished("a")
        rep.job_started("b")
        rep.job_finished("b")
        assert stream.getvalue() == ""
        rep.close()
        out = stream.getvalue()
        assert out.count("\n") == 1  # exactly the summary line
        assert "executed 2" in out

    def test_force_restores_per_update_lines_on_non_tty(self):
        import io

        from repro.engine import ProgressReporter

        stream = io.StringIO()
        rep = ProgressReporter(
            total=1, stream=stream, min_interval=0.0, force=True
        )
        rep.job_started("a")
        rep.job_finished("a")
        assert "1/1 done" in stream.getvalue()
        rep.close()
        assert "\r" not in stream.getvalue()  # plain lines, no redraws

    def test_tty_still_redraws_in_place(self):
        import io

        from repro.engine import ProgressReporter

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        rep = ProgressReporter(total=1, stream=stream, min_interval=0.0)
        rep.job_started("a")
        rep.job_finished("a")
        assert "\r" in stream.getvalue()
        rep.close()
        assert stream.getvalue().endswith("jobs/s)\n")

    def test_run_jobs_emits_cache_hit_telemetry(self, tmp_path, two_trial_scale, capsys):
        jobs = trial_jobs("mvt", "random", two_trial_scale, seed=0)
        cfg = EngineConfig(jobs=1, cache_dir=str(tmp_path), progress=True)
        run_jobs(jobs, config=cfg)
        run_jobs(jobs, config=cfg)
        err = capsys.readouterr().err
        assert f"cache hits {len(jobs)}" in err
