"""Tests for the Expected Improvement acquisition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RandomForestRegressor
from repro.sampling import make_strategy
from repro.sampling.ei import ExpectedImprovementSampling, expected_improvement
from repro.space import DataPool


class TestClosedForm:
    def test_no_improvement_no_sigma_is_zero(self):
        ei = expected_improvement(np.array([2.0]), np.array([0.0]), incumbent=1.0)
        assert ei[0] == 0.0

    def test_sure_improvement_no_sigma_is_gap(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.0]), incumbent=1.0)
        assert ei[0] == pytest.approx(0.5)

    def test_symmetric_known_value(self):
        # mu = incumbent: EI = sigma * phi(0) = sigma / sqrt(2 pi)
        ei = expected_improvement(np.array([1.0]), np.array([2.0]), incumbent=1.0)
        assert ei[0] == pytest.approx(2.0 / np.sqrt(2 * np.pi))

    def test_monotone_in_sigma(self):
        mu = np.full(5, 2.0)
        sig = np.linspace(0.1, 2.0, 5)
        ei = expected_improvement(mu, sig, incumbent=1.5)
        assert (np.diff(ei) > 0).all()

    def test_monotone_in_mu(self):
        mu = np.linspace(0.5, 3.0, 6)
        sig = np.full(6, 0.5)
        ei = expected_improvement(mu, sig, incumbent=1.0)
        assert (np.diff(ei) < 0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="shapes"):
            expected_improvement(np.ones(2), np.ones(3), 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            expected_improvement(np.ones(1), -np.ones(1), 1.0)


class TestStrategy:
    def test_selects_high_ei(self, rng):
        X = rng.random((150, 3))
        y = 1.0 + X[:, 0]
        pool = DataPool(X)
        model = RandomForestRegressor(n_estimators=10, seed=0).fit(X[:60], y[:60])
        strat = ExpectedImprovementSampling()
        picked = strat.select(model, pool, 5, rng)
        mu, sigma = model.predict_with_uncertainty(pool.X)
        ei = expected_improvement(mu, sigma, float(y[:60].min()))
        assert np.allclose(np.sort(ei[picked])[::-1], np.sort(ei)[::-1][:5])

    def test_registry(self):
        assert make_strategy("ei").name == "ei"

    def test_runs_in_algorithm_1(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace("mvt", "ei", tiny_scale, seed=0)
        assert trace.n_train[-1] == tiny_scale.n_max


@given(
    incumbent=st.floats(-5.0, 5.0),
    seed=st.integers(0, 500),
)
@settings(max_examples=40, deadline=None)
def test_property_ei_nonnegative_and_bounded(incumbent, seed):
    """0 ≤ EI ≤ improvement-gap + σ (a crude but universal bound)."""
    rng = np.random.default_rng(seed)
    mu = rng.normal(size=30)
    sigma = rng.uniform(0, 2, 30)
    ei = expected_improvement(mu, sigma, incumbent)
    assert (ei >= 0).all()
    assert (ei <= np.maximum(incumbent - mu, 0) + sigma).all()
