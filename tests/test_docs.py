"""Documentation is a deliverable: every public item must carry a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name}: docstring too thin"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_documented(module_name):
    """Everything exported via __all__ is documented."""
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{module_name}.{name} lacks a docstring"


def test_public_classes_document_methods():
    """Public methods of the core classes are documented."""
    from repro.active import ActiveLearner
    from repro.forest import RandomForestRegressor, RegressionTree
    from repro.space import DataPool, ParameterSpace

    for cls in (RandomForestRegressor, RegressionTree, ParameterSpace, DataPool, ActiveLearner):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
