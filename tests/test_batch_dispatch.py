"""Batched dispatch & shared-memory pools: bit-identity and lifecycle.

The engine's batched hot path (DESIGN.md §2h) must be invisible in the
results: trial histories are pinned bit-identical across ``--jobs 1/2/4``,
batch sizes (auto, pinned, per-trial), and a chaos cocktail where crashes
hit mid-chunk trials.  The shared-memory transport must rebuild prepared
data bit-identically in workers and leave no segments behind — the parent
owns every name and unlinks on the engine ``finally`` path.
"""

import io
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ProgressReporter,
    chunk_size,
    engine_from_env,
    run_jobs,
    trial_jobs,
)
from repro.engine import executor, shm
from repro.experiments.config import ExperimentScale
from repro.telemetry import counters


@pytest.fixture
def two_trial_scale() -> ExperimentScale:
    """Tiny scale with two trials per strategy — chunks have members."""
    return ExperimentScale(
        name="tiny2",
        pool_size=150,
        test_size=120,
        n_init=8,
        n_batch=1,
        n_max=16,
        n_trials=2,
        eval_every=4,
        n_estimators=8,
    )


def _cfg(**kw) -> EngineConfig:
    kw.setdefault("progress", False)
    kw.setdefault("retry_backoff", 0.01)
    return EngineConfig(**kw)


def _histories(results):
    return {k: r.history.records for k, r in results.items()}


def _batch_jobs(scale):
    return trial_jobs("mvt", "pwu", scale, seed=0) + trial_jobs(
        "mvt", "random", scale, seed=0
    )


@pytest.fixture
def baseline(two_trial_scale):
    """Serial, fault-free reference histories for the standard 4-job batch."""
    jobs = _batch_jobs(two_trial_scale)
    results, _ = run_jobs(jobs, config=_cfg(jobs=1))
    return jobs, _histories(results)


# -- config plumbing ---------------------------------------------------------


class TestBatchSizeConfig:
    def test_default_is_auto(self):
        assert EngineConfig().batch_size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            EngineConfig(batch_size=-1)

    def test_env_var_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "7")
        assert engine_from_env().batch_size == 7

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        assert engine_from_env().batch_size == 0


class TestChunkSizePolicy:
    def test_pinned_size_wins(self):
        assert chunk_size(1, 100, 4) == 1
        assert chunk_size(5, 100, 4) == 5

    def test_auto_small_queue_stays_per_trial(self):
        assert chunk_size(0, 4, 4) == 1
        assert chunk_size(0, 2, 8) == 1

    def test_auto_targets_four_chunks_per_worker(self):
        assert chunk_size(0, 40, 4) == 3  # ceil(40 / 16)

    def test_auto_is_capped(self):
        assert chunk_size(0, 10_000, 4) == 16


# -- bit-identity across jobs × batch size -----------------------------------


class TestBatchBitIdentity:
    @pytest.mark.parametrize(
        "jobs,batch_size",
        [(2, 0), (2, 1), (2, 2), (4, 3), (4, 0)],
    )
    def test_histories_identical_at_any_jobs_and_batch(
        self, baseline, two_trial_scale, jobs, batch_size
    ):
        ref_jobs, ref = baseline
        results, stats = run_jobs(
            ref_jobs, config=_cfg(jobs=jobs, batch_size=batch_size)
        )
        assert all(r.ok for r in results.values())
        assert _histories(results) == ref
        assert stats.executed == len(ref)

    def test_batched_counters_account_for_chunked_trials(
        self, baseline, two_trial_scale
    ):
        ref_jobs, ref = baseline
        before = counters.value("engine.jobs.batched")
        results, _ = run_jobs(ref_jobs, config=_cfg(jobs=2, batch_size=2))
        assert _histories(results) == ref
        # 4 trials in chunks of 2: every trial travelled batched.
        assert counters.value("engine.jobs.batched") - before >= len(ref_jobs)


# -- chaos: faults must stay per-trial inside a chunk ------------------------


class TestBatchedChaos:
    def test_chaos_cocktail_is_bit_identical_when_batched(
        self, baseline, two_trial_scale
    ):
        ref_jobs, ref = baseline
        results, stats = run_jobs(
            ref_jobs,
            config=_cfg(
                jobs=2,
                batch_size=2,
                faults="exc:0.6:2,slow:0.6:1:0.02",
                max_retries=3,
            ),
        )
        assert all(r.ok for r in results.values())
        assert _histories(results) == ref

    def test_mid_chunk_crash_salvages_the_rest_of_the_chunk(
        self, baseline, two_trial_scale
    ):
        """Every trial crashes its worker on first attempt (``crash:1.0``).

        With ``batch_size=3`` the crash always hits a mid-batch trial;
        chunk-mates lost with the worker are requeued, retried, and must
        land bit-identical to the fault-free serial run.
        """
        ref_jobs, ref = baseline
        results, stats = run_jobs(
            ref_jobs,
            config=_cfg(
                jobs=2, batch_size=3, faults="crash:1.0", max_retries=2
            ),
        )
        assert all(r.ok for r in results.values())
        assert _histories(results) == ref
        assert stats.retried > 0


# -- shared-memory transport -------------------------------------------------


class TestSharedMemory:
    def test_attach_rebuilds_prepared_data_bit_identically(
        self, two_trial_scale
    ):
        benchmark, pool, X_test, y_test = executor._prepared(
            "mvt", two_trial_scale, 0
        )
        registry = shm.SegmentRegistry()
        pkey = ("mvt", two_trial_scale, 0)
        registry.publish(
            pkey, {"pool_X": pool.X, "X_test": X_test, "y_test": y_test}
        )
        try:
            shm.install_manifest(registry.manifest)
            executor._PREPARED.clear()
            bench2, pool2, X2, y2 = executor._prepared(
                "mvt", two_trial_scale, 0
            )
            assert bench2.name == benchmark.name
            assert pool2.X is not pool.X
            np.testing.assert_array_equal(pool2.X, pool.X)
            np.testing.assert_array_equal(X2, X_test)
            np.testing.assert_array_equal(y2, y_test)
        finally:
            shm.install_manifest(None)
            executor._PREPARED.clear()
            registry.unlink_all()

    def test_unlink_all_removes_segments_and_is_idempotent(self):
        registry = shm.SegmentRegistry()
        registry.publish(("k",), {"a": np.arange(8.0)})
        name, _shape, _dtype = registry.manifest[("k",)]["a"]
        registry.unlink_all()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        registry.unlink_all()  # second teardown is a no-op
        assert len(registry) == 0

    def test_failed_publish_cleans_up_its_own_segment(self):
        registry = shm.SegmentRegistry()
        bad = np.array([object()], dtype=object)
        with pytest.raises(ValueError, match="object-dtype"):
            registry.publish(("bad",), {"a": bad})
        assert len(registry) == 0
        assert ("bad",) not in registry.manifest

    def test_mid_publish_failure_unlinks_the_partial_segment(
        self, monkeypatch
    ):
        registry = shm.SegmentRegistry()
        arr = np.arange(4.0)

        def boom(*args, **kwargs):
            raise RuntimeError("copy failed")

        monkeypatch.setattr(shm.np, "ndarray", boom)
        with pytest.raises(RuntimeError, match="copy failed"):
            registry.publish(("bad",), {"a": arr})
        assert len(registry) == 0
        assert ("bad",) not in registry.manifest

    def test_parallel_run_leaves_no_segments_behind(self, two_trial_scale):
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = {p.name for p in shm_dir.iterdir()}
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        results, _ = run_jobs(jobs, config=_cfg(jobs=2, batch_size=2))
        assert all(r.ok for r in results.values())
        leaked = {
            n
            for n in {p.name for p in shm_dir.iterdir()} - before
            if n.startswith("psm_")
        }
        assert not leaked


# -- progress line regression (S1) -------------------------------------------


class TestProgressBatchDisplay:
    def test_line_shows_trials_per_sec_and_batch_size(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=8, enabled=True, stream=stream, force=True, min_interval=0.0
        )
        reporter.batch_dispatched(4)
        reporter.job_started("trial")
        out = stream.getvalue()
        assert "trials/s" in out
        assert "batch=4" in out

    def test_per_trial_dispatch_hides_batch_field(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=2, enabled=True, stream=stream, force=True, min_interval=0.0
        )
        reporter.batch_dispatched(1)
        reporter.job_started("trial")
        assert "batch=" not in stream.getvalue()

    def test_batch_dispatched_feeds_counters(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=8, enabled=False, stream=stream)
        before = counters.value("engine.jobs.batched")
        reporter.batch_dispatched(3)
        assert counters.gauges_snapshot()["engine.batch.size"] == 3
        assert counters.value("engine.jobs.batched") - before == 3
        reporter.batch_dispatched(1)  # per-trial: gauge only
        assert counters.gauges_snapshot()["engine.batch.size"] == 1
        assert counters.value("engine.jobs.batched") - before == 3
