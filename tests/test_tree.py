"""Tests for the regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import RegressionTree


class TestFitValidation:
    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            RegressionTree().fit(np.zeros(5), np.zeros(5))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_zero_samples(self):
        with pytest.raises(ValueError, match="zero samples"):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_non_finite_rejected(self):
        X = np.zeros((3, 1))
        with pytest.raises(ValueError, match="finite"):
            RegressionTree().fit(X, np.array([1.0, np.nan, 2.0]))

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            RegressionTree(min_samples_split=1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RegressionTree().predict(np.zeros((1, 2)))


class TestFitting:
    def test_interpolates_training_data_when_unconstrained(self, rng):
        X = rng.random((60, 3))
        y = rng.normal(size=60)
        tree = RegressionTree(rng=rng).fit(X, y)
        # With distinct rows and min_samples_leaf=1 each point gets its leaf.
        assert np.allclose(tree.predict(X), y, atol=1e-10)

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        tree = RegressionTree().fit(X, np.full(20, 7.0))
        assert tree.n_nodes == 1
        assert tree.predict(X).tolist() == [7.0] * 20

    def test_max_depth_limits_depth(self, rng):
        X = rng.random((200, 3))
        y = rng.normal(size=200)
        tree = RegressionTree(max_depth=3, rng=rng).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.random((100, 2))
        y = rng.normal(size=100)
        tree = RegressionTree(min_samples_leaf=10, rng=rng).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_predictions_within_target_range(self, rng):
        X = rng.random((80, 4))
        y = rng.normal(size=80)
        tree = RegressionTree(rng=rng).fit(X, y)
        pred = tree.predict(rng.random((500, 4)))
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12

    def test_step_function_learned_exactly(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.6).astype(float) * 3.0
        tree = RegressionTree().fit(X, y)
        assert tree.predict(np.array([[0.1], [0.9]])).tolist() == [0.0, 3.0]


class TestInference:
    def test_apply_returns_leaves(self, rng):
        X = rng.random((50, 2))
        tree = RegressionTree(rng=rng).fit(X, rng.normal(size=50))
        leaves = tree.apply(X)
        assert (tree.feature_[leaves] == -1).all()

    def test_wrong_feature_count_rejected(self, rng):
        tree = RegressionTree(rng=rng).fit(rng.random((10, 3)), rng.normal(size=10))
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.zeros((2, 4)))

    def test_leaf_stats_consistent_with_predict(self, rng):
        X = rng.random((60, 2))
        y = rng.normal(size=60)
        tree = RegressionTree(min_samples_leaf=5, rng=rng).fit(X, y)
        mean, var, count = tree.leaf_stats(X)
        assert np.allclose(mean, tree.predict(X))
        assert (var >= 0).all()
        assert (count >= 5).all()

    def test_single_row_query(self, rng):
        tree = RegressionTree(rng=rng).fit(rng.random((20, 2)), rng.normal(size=20))
        assert tree.predict(np.zeros(2)).shape == (1,)


class TestMaxFeatures:
    @pytest.mark.parametrize(
        "mf,expected",
        [(None, 9), ("all", 9), ("sqrt", 3), ("third", 3), (5, 5), (0.5, 4)],
    )
    def test_n_split_features(self, mf, expected):
        assert RegressionTree(max_features=mf)._n_split_features(9) == expected

    def test_invalid_settings(self):
        tree = RegressionTree(max_features=0)
        with pytest.raises(ValueError):
            tree._n_split_features(5)
        with pytest.raises(ValueError):
            RegressionTree(max_features=1.5)._n_split_features(5)
        with pytest.raises(ValueError):
            RegressionTree(max_features="nope")._n_split_features(5)

    def test_third_floors_at_one(self):
        assert RegressionTree(max_features="third")._n_split_features(2) == 1


class TestImportances:
    def test_informative_feature_dominates(self, rng):
        X = rng.random((200, 3))
        y = 10.0 * X[:, 1] + rng.normal(0, 0.01, 200)
        tree = RegressionTree(rng=rng).fit(X, y)
        imp = tree.impurity_importances()
        assert imp.argmax() == 1

    def test_importances_nonnegative(self, rng):
        X = rng.random((100, 4))
        tree = RegressionTree(rng=rng).fit(X, rng.normal(size=100))
        assert (tree.impurity_importances() >= 0).all()


@given(seed=st.integers(0, 5000), leaf=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_property_leaf_counts_partition_training_set(seed, leaf):
    """Every training sample lands in exactly one leaf; counts sum to n."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 80))
    X = rng.random((n, 3))
    y = rng.normal(size=n)
    tree = RegressionTree(min_samples_leaf=leaf, rng=rng).fit(X, y)
    leaves = tree.apply(X)
    _, counts = np.unique(leaves, return_counts=True)
    assert counts.sum() == n
    assert counts.min() >= 1
