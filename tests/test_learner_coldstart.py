"""Tests for the explicit cold-start path (transfer seeding hook)."""

import numpy as np
import pytest

from repro.active import ActiveLearner, LearnerConfig
from repro.sampling import make_strategy
from repro.space import DataPool


def _problem(rng, n_pool=120, n_test=110):
    X = rng.random((n_pool + n_test, 3))
    truth = lambda A: 1.0 + np.atleast_2d(A)[:, 0]  # noqa: E731
    return (
        DataPool(X[:n_pool]),
        X[n_pool:],
        truth(X[n_pool:]),
        lambda A: truth(A),
    )


class TestExplicitColdStart:
    def test_cold_start_indices_used_verbatim(self, rng):
        pool, X_test, y_test, oracle = _problem(rng)
        seeds = np.array([3, 17, 42, 99, 5])
        learner = ActiveLearner(
            pool=pool,
            evaluate=oracle,
            X_test=X_test,
            y_test=y_test,
            strategy=make_strategy("random"),
            config=LearnerConfig(n_init=5, n_max=10, eval_every=5, alphas=(0.1,)),
            seed=rng,
            cold_start_indices=seeds,
        )
        history = learner.run()
        assert tuple(history.records[0].selected) == tuple(int(i) for i in seeds)

    def test_wrong_length_rejected(self, rng):
        pool, X_test, y_test, oracle = _problem(rng)
        learner = ActiveLearner(
            pool=pool,
            evaluate=oracle,
            X_test=X_test,
            y_test=y_test,
            strategy=make_strategy("random"),
            config=LearnerConfig(n_init=5, n_max=10, alphas=(0.1,)),
            seed=rng,
            cold_start_indices=np.array([1, 2]),
        )
        with pytest.raises(ValueError, match="n_init"):
            learner.run()

    def test_seeded_points_removed_from_pool(self, rng):
        pool, X_test, y_test, oracle = _problem(rng)
        seeds = np.arange(5)
        learner = ActiveLearner(
            pool=pool,
            evaluate=oracle,
            X_test=X_test,
            y_test=y_test,
            strategy=make_strategy("random"),
            config=LearnerConfig(n_init=5, n_max=12, eval_every=3, alphas=(0.1,)),
            seed=rng,
            cold_start_indices=seeds,
        )
        history = learner.run()
        all_picked = history.all_selected(include_cold_start=True)
        assert len(all_picked) == len(set(all_picked)) == 12
        assert set(range(5)) <= set(all_picked)
